package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/checkpoint"
	"parsim/internal/netlist"
)

// Config sizes a Coordinator. The zero value of any field selects the
// default documented on it.
type Config struct {
	// HeartbeatEvery is the interval workers are told to heartbeat at and
	// the coordinator's own monitor cadence. Default 500ms.
	HeartbeatEvery time.Duration
	// EvictAfter is the silence after which a member is declared dead, its
	// vnodes leave the ring and its in-flight jobs are requeued. Default
	// 3 x HeartbeatEvery.
	EvictAfter time.Duration
	// VNodes is each member's virtual node count. Default DefaultVNodes.
	VNodes int
	// CacheEntries bounds the dedup result cache. Default 1024; negative
	// disables dedup entirely.
	CacheEntries int
	// MaxBodyBytes caps submission bodies, mirroring the worker default.
	// Default 8 MiB.
	MaxBodyBytes int64
	// MaxNodes and MaxElems cap the parsed circuit during keying; they
	// should not exceed the workers' own limits. Default 200000 each.
	MaxNodes, MaxElems int
	// RetryAfter is the hint on fleet-full 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxRequeues caps how many times one job is re-dispatched after node
	// evictions before it is failed. Default 3.
	MaxRequeues int
	// Client performs worker HTTP calls. Default: 15s-timeout client.
	Client *http.Client
	// Logf receives operational log lines (evictions, requeues). Default
	// discards them.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * c.HeartbeatEvery
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200000
	}
	if c.MaxElems <= 0 {
		c.MaxElems = 200000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRequeues <= 0 {
		c.MaxRequeues = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// member is one registered worker, guarded by Coordinator.mu.
type member struct {
	addr     string // advertised host:port (or URL)
	cores    int
	maxQueue int
	stateDir string // worker's checkpoint/journal dir ("" = not durable)
	lastBeat time.Time
	gauges   NodeGauges
}

// NodeGauges is the capacity snapshot a worker advertises on join and on
// every heartbeat — the same numbers the S26 scheduler exports on the
// worker's own /metrics page.
type NodeGauges struct {
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"jobs_running"`
	CoresInUse int `json:"cores_in_use"`
	CoreBudget int `json:"core_budget"`
}

// clusterJob is the coordinator's record of one routed submission.
type clusterJob struct {
	id       string
	key      string
	body     []byte // original submission body, forwarded verbatim
	hasWatch bool   // watch jobs carry node-local VCD state; never deduped

	mu        sync.Mutex
	node      string // owning worker addr ("" = parked, awaiting capacity)
	nodeJobID string // job id on the owning worker
	state     string // last observed worker state
	requeues  int    // re-dispatches consumed after evictions
	recorded  bool   // terminal state already counted (and cached)
	lastView  map[string]any
	deduped   bool
	// pending is true while the submission handler's initial dispatch is
	// still in flight. The job is registered (so identical submissions
	// coalesce onto it) but node is still "", and the monitor must not
	// mistake it for a parked job and dispatch a duplicate.
	pending bool
}

func (cj *clusterJob) terminal() bool {
	return cj.state == "done" || cj.state == "failed" || cj.state == "cancelled"
}

// Coordinator is the fleet front door: it owns the membership ring, the
// dedup cache and the job records, and proxies the worker job API so
// clients talk to one address regardless of fleet size. Create with
// NewCoordinator, serve via Handler, stop with Close.
type Coordinator struct {
	cfg    Config
	mux    *http.ServeMux
	ring   *Ring
	cache  *ResultCache
	met    *fleetMetrics
	nextID atomic.Int64

	mu        sync.Mutex
	nodes     map[string]*member
	stateDirs map[string]string // every addr ever seen -> its state dir
	jobs      map[string]*clusterJob
	order     []*clusterJob
	inflight  map[string]*clusterJob // job key -> live (non-terminal) record

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewCoordinator builds a Coordinator and starts its monitor loop.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		ring:      NewRing(cfg.VNodes),
		cache:     NewResultCache(cfg.CacheEntries),
		met:       newFleetMetrics(),
		nodes:     make(map[string]*member),
		stateDirs: make(map[string]string),
		jobs:      make(map[string]*clusterJob),
		inflight:  make(map[string]*clusterJob),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	c.mux.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	c.mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/cluster/leave", c.handleLeave)
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs", c.handleList)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	go c.monitor()
	return c
}

// Handler returns the HTTP handler serving the fleet API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Close stops the monitor loop. It does not touch the workers: they keep
// draining their queues and can rejoin a new coordinator.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Members returns the live member addresses.
func (c *Coordinator) Members() []string { return c.ring.Members() }

func (c *Coordinator) limits() netlist.Limits {
	return netlist.Limits{
		MaxBytes: c.cfg.MaxBodyBytes,
		MaxNodes: c.cfg.MaxNodes,
		MaxElems: c.cfg.MaxElems,
	}
}

// baseURL normalises an advertised address into a URL prefix.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// monitor is the failure-detector loop: every heartbeat interval it
// evicts members whose last beat is older than EvictAfter and requeues
// their in-flight jobs, then retries any parked jobs (routed nowhere
// because the whole fleet was full when their node died).
func (c *Coordinator) monitor() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-ticker.C:
			c.tick(now)
		}
	}
}

func (c *Coordinator) tick(now time.Time) {
	var dead []string
	c.mu.Lock()
	for addr, m := range c.nodes {
		if now.Sub(m.lastBeat) > c.cfg.EvictAfter {
			delete(c.nodes, addr)
			dead = append(dead, addr)
		}
	}
	c.mu.Unlock()

	for _, addr := range dead {
		c.ring.Remove(addr)
		c.met.onEvict()
		c.cfg.Logf("cluster: evicting node %s (missed heartbeats)", addr)
	}

	// Requeue candidates: jobs owned by a just-evicted node, jobs owned by
	// any previously evicted node (routed there between ticks), and parked
	// jobs waiting for capacity.
	deadSet := make(map[string]bool, len(dead))
	for _, addr := range dead {
		deadSet[addr] = true
	}
	var victims []*clusterJob
	c.mu.Lock()
	for _, cj := range c.order {
		cj.mu.Lock()
		if !cj.terminal() && !cj.pending {
			owner := cj.node
			_, live := c.nodes[owner]
			if owner == "" || deadSet[owner] || !live {
				victims = append(victims, cj)
			}
		}
		cj.mu.Unlock()
	}
	c.mu.Unlock()

	for _, cj := range victims {
		c.requeue(cj)
	}
}

// requeue re-dispatches a job whose node died (or that was parked),
// resuming from the dead node's last snapshot when one is readable —
// state dirs are assumed reachable from the survivors (shared filesystem
// or single host), the common fleet deployment; when they are not, the
// load below fails and the job simply replays from t=0.
func (c *Coordinator) requeue(cj *clusterJob) {
	cj.mu.Lock()
	if cj.terminal() {
		cj.mu.Unlock()
		return
	}
	if cj.requeues >= c.cfg.MaxRequeues {
		attempts := cj.requeues
		cj.mu.Unlock()
		c.failJob(cj, fmt.Sprintf("requeue budget exhausted after %d attempts", attempts))
		return
	}
	deadNode, deadJobID := cj.node, cj.nodeJobID
	cj.node, cj.nodeJobID = "", ""
	cj.state = "queued"
	cj.mu.Unlock()

	resume := ""
	if deadNode != "" && deadJobID != "" {
		c.mu.Lock()
		stateDir := c.stateDirs[deadNode]
		c.mu.Unlock()
		if stateDir != "" {
			p := filepath.Join(stateDir, deadJobID+".ckpt")
			if _, err := checkpoint.Load(p); err == nil {
				resume = p
			}
		}
	}

	body := cj.body
	if resume != "" {
		if b, err := injectResume(cj.body, resume); err == nil {
			body = b
		}
	}

	rr := c.route(cj.key, body)
	switch {
	case rr.ok:
		cj.mu.Lock()
		cj.requeues++
		attempt := cj.requeues
		cj.node, cj.nodeJobID = rr.node, rr.nodeJobID
		cj.state = viewState(rr.view)
		cj.lastView = c.rewriteView(cj, rr.view)
		cj.mu.Unlock()
		c.met.onRequeue(resume != "")
		c.cfg.Logf("cluster: requeued job %s (attempt %d) from %s to %s (resume=%v)",
			cj.id, attempt, deadNode, rr.node, resume != "")
	case rr.status == http.StatusTooManyRequests || rr.status == http.StatusServiceUnavailable:
		// Fleet full or empty: stay parked, the next tick retries. Parking
		// does not consume requeue budget — the job did not dispatch.
	default:
		// Deterministic rejection (400/413): every node would refuse it.
		c.failJob(cj, fmt.Sprintf("requeue rejected with status %d: %s",
			rr.status, strings.TrimSpace(string(rr.errBody))))
	}
}

// failJob marks a job failed coordinator-side and releases its dedup slot.
func (c *Coordinator) failJob(cj *clusterJob, msg string) {
	cj.mu.Lock()
	cj.state = "failed"
	cj.node, cj.nodeJobID = "", ""
	view := map[string]any{
		"id":    cj.id,
		"state": "failed",
		"error": msg,
	}
	if cj.lastView != nil {
		for k, v := range cj.lastView {
			if _, ok := view[k]; !ok {
				view[k] = v
			}
		}
	}
	cj.lastView = view
	cj.mu.Unlock()
	c.met.onTerminal("failed")
	c.dropInflight(cj)
	c.cfg.Logf("cluster: job %s failed: %s", cj.id, msg)
}

func (c *Coordinator) dropInflight(cj *clusterJob) {
	c.mu.Lock()
	if c.inflight[cj.key] == cj {
		delete(c.inflight, cj.key)
	}
	c.mu.Unlock()
}

// injectResume adds a resume_from field to a submission body.
func injectResume(body []byte, path string) ([]byte, error) {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	m["resume_from"] = path
	return json.Marshal(m)
}

// routeResult is the outcome of one dispatch walk over the ring.
type routeResult struct {
	ok        bool
	node      string
	nodeJobID string
	view      map[string]any
	status    int    // when !ok: status the client should see
	errBody   []byte // when !ok: worker error body (propagated for 4xx)
}

// route walks the key's ring successors and dispatches the body to the
// first node that admits it. A full (429) or draining (503) or
// unreachable node spills to the next successor; a deterministic
// rejection (400/413 — the same on every node) propagates immediately;
// exhausting the list is the fleet-full signal.
func (c *Coordinator) route(key string, body []byte) routeResult {
	members := c.ring.Successors(key, c.ring.Size())
	if len(members) == 0 {
		return routeResult{status: http.StatusServiceUnavailable,
			errBody: []byte("no workers joined the fleet")}
	}
	for i, addr := range members {
		resp, err := c.cfg.Client.Post(baseURL(addr)+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			c.cfg.Logf("cluster: dispatch to %s failed: %v", addr, err)
			continue
		}
		rb, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var view map[string]any
			if err := json.Unmarshal(rb, &view); err != nil {
				view = map[string]any{}
			}
			nodeJobID, _ := view["id"].(string)
			c.met.onRoute(addr, i)
			return routeResult{ok: true, node: addr, nodeJobID: nodeJobID, view: view}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			continue // node full or draining: spill to the next successor
		default:
			return routeResult{status: resp.StatusCode, errBody: rb}
		}
	}
	return routeResult{status: http.StatusTooManyRequests,
		errBody: []byte(fmt.Sprintf("fleet full: all %d nodes refused the job; retry later", len(members)))}
}

// viewState extracts the worker-reported state from a job view.
func viewState(view map[string]any) string {
	if s, ok := view["state"].(string); ok {
		return s
	}
	return "queued"
}

// rewriteView returns a copy of a worker job view presented as this
// cluster job: the worker-local id is replaced and the owning node is
// annotated. Callers hold cj.mu.
func (c *Coordinator) rewriteView(cj *clusterJob, view map[string]any) map[string]any {
	out := make(map[string]any, len(view)+2)
	for k, v := range view {
		out[k] = v
	}
	out["id"] = cj.id
	if cj.node != "" {
		out["node"] = cj.node
	}
	if cj.deduped {
		out["deduped"] = true
		// Resumed is provenance of the run that produced the cached
		// result, not of a submission that never simulated.
		delete(out, "resumed")
	}
	return out
}
