package stats

import "fmt"

// FaultStatus is the outcome of one simulated stuck-at fault. The JSON
// field tags are part of the stable run-report schema, like the
// WorkerCounters fields.
type FaultStatus struct {
	Site     string `json:"site"`     // e.g. "alu_y[3]:sa1"
	Detected bool   `json:"detected"` // diverged from the good machine at an observation node
	Step     int64  `json:"step"`     // first detection step, -1 when undetected
}

// FaultCoverage summarises a concurrent stuck-at fault simulation: how
// many collapsed faults were simulated, how many the stimulus detected,
// and how the work was chunked into passes of (lanes-1) faults.
type FaultCoverage struct {
	Total     int           `json:"total"`               // collapsed faults simulated
	Detected  int           `json:"detected"`            // faults observed diverging from lane 0
	Collapsed int           `json:"collapsed,omitempty"` // equivalent faults removed before simulation
	Passes    int           `json:"passes"`              // chunked passes run
	Lanes     int           `json:"lanes"`               // plane lanes per pass (1 good + lanes-1 faulty)
	Faults    []FaultStatus `json:"faults,omitempty"`    // per-fault rows when requested
}

// Coverage returns detected/total in [0, 1], or 0 with an empty list.
func (f *FaultCoverage) Coverage() float64 {
	if f.Total == 0 {
		return 0
	}
	return float64(f.Detected) / float64(f.Total)
}

// String formats a one-line summary, e.g.
// "fault coverage 93.8% (30/32 collapsed faults, 1 pass of 64 lanes)".
func (f *FaultCoverage) String() string {
	passes := "passes"
	if f.Passes == 1 {
		passes = "pass"
	}
	return fmt.Sprintf("fault coverage %.1f%% (%d/%d collapsed faults, %d %s of %d lanes)",
		100*f.Coverage(), f.Detected, f.Total, f.Passes, passes, f.Lanes)
}
