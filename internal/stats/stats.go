// Package stats collects run metrics: event counts, element evaluations,
// per-worker busy time and the event-availability distribution the paper
// uses to explain why synchronous parallelism runs out of work ("there can
// be less than 5 events available for evaluation about 50% of the time").
package stats

import (
	"fmt"
	"sort"
	"time"

	"parsim/internal/circuit"
)

// Run summarises one simulation run.
type Run struct {
	Algorithm   string
	Circuit     string
	Horizon     circuit.Time
	Workers     int
	TimeSteps   int64 // active time steps processed (0 for the async algorithm)
	NodeUpdates int64 // node value changes applied
	Evals       int64 // element evaluations (activations, for the async algorithm)
	ModelCalls  int64 // element model-function invocations (== Evals except async)
	EventsUsed  int64 // input events consumed by evaluations (async)
	Wall        time.Duration
	Busy        []time.Duration // per-worker useful time
	Avail       Histogram       // elements available for evaluation per time step
}

// Utilization returns total busy time divided by workers x wall time, the
// paper's processor-utilisation metric. Returns 0 if timing was not
// collected.
func (r *Run) Utilization() float64 {
	if r.Wall <= 0 || r.Workers == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range r.Busy {
		busy += b
	}
	return float64(busy) / (float64(r.Wall) * float64(r.Workers))
}

// String formats a one-line summary.
func (r *Run) String() string {
	return fmt.Sprintf("%s on %s: P=%d steps=%d updates=%d evals=%d wall=%v util=%.0f%%",
		r.Algorithm, r.Circuit, r.Workers, r.TimeSteps, r.NodeUpdates, r.Evals,
		r.Wall.Round(time.Microsecond), 100*r.Utilization())
}

// Histogram counts integer observations (e.g. activated elements per time
// step).
type Histogram struct {
	counts map[int]int64
	n      int64
	sum    int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v]++
	h.n++
	h.sum += int64(v)
}

// N returns the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// FractionBelow returns the fraction of samples strictly less than v.
func (h *Histogram) FractionBelow(v int) float64 {
	if h.n == 0 {
		return 0
	}
	var below int64
	for k, c := range h.counts {
		if k < v {
			below += c
		}
	}
	return float64(below) / float64(h.n)
}

// Quantile returns the smallest observed value q of the way through the
// distribution (q in [0, 1]).
func (h *Histogram) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := int64(q * float64(h.n))
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen > target {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Max returns the largest observed value.
func (h *Histogram) Max() int {
	max := 0
	for k := range h.counts {
		if k > max {
			max = k
		}
	}
	return max
}
