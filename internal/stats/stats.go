// Package stats collects run metrics: event counts, element evaluations,
// per-worker busy time and the event-availability distribution the paper
// uses to explain why synchronous parallelism runs out of work ("there can
// be less than 5 events available for evaluation about 50% of the time").
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"parsim/internal/circuit"
)

// WorkerCounters is the per-worker observability surface shared by every
// simulation algorithm. Counters that do not apply to an algorithm stay
// zero (e.g. Steals outside the event-driven simulator, Rollbacks outside
// Time Warp), so utilisation figures and overhead comparisons read the
// same way across all seven engines.
// The JSON field tags are a stable public schema: `parsim -json`, the
// parsimd daemon's job results and any external consumer all read the
// same names. Durations are tagged *_ns because time.Duration marshals as
// integer nanoseconds.
type WorkerCounters struct {
	Evals        int64 `json:"evals"`         // element evaluations (activations, for the async algorithm)
	ModelCalls   int64 `json:"model_calls"`   // element model-function invocations (== Evals except async)
	NodeUpdates  int64 `json:"node_updates"`  // node value changes applied
	EventsUsed   int64 `json:"events_used"`   // input events consumed by evaluations (async family)
	Steals       int64 `json:"steals"`        // elements evaluated out of another worker's queue (event-driven)
	BarrierWaits int64 `json:"barrier_waits"` // barrier passes (synchronous algorithms)
	IdlePolls    int64 `json:"idle_polls"`    // empty work-queue polls / blocking waits (async family)
	Messages     int64 `json:"messages"`      // inter-worker messages sent (distributed-async)
	Rollbacks    int64 `json:"rollbacks"`     // rollback episodes (time-warp)
	Cancelled    int64 `json:"cancelled"`     // events annihilated by anti-messages (time-warp)
	RolledBack   int64 `json:"rolled_back"`   // processed element steps undone (time-warp)

	Busy time.Duration `json:"busy_ns"` // wall time minus Idle
	Idle time.Duration `json:"idle_ns"` // time spent blocked or starved
}

// Accumulate adds o's counters into c. Busy and Idle accumulate too, which
// is meaningful only when summing per-worker rows into a total.
func (c *WorkerCounters) Accumulate(o WorkerCounters) {
	c.Evals += o.Evals
	c.ModelCalls += o.ModelCalls
	c.NodeUpdates += o.NodeUpdates
	c.EventsUsed += o.EventsUsed
	c.Steals += o.Steals
	c.BarrierWaits += o.BarrierWaits
	c.IdlePolls += o.IdlePolls
	c.Messages += o.Messages
	c.Rollbacks += o.Rollbacks
	c.Cancelled += o.Cancelled
	c.RolledBack += o.RolledBack
	c.Busy += o.Busy
	c.Idle += o.Idle
}

// Run summarises one simulation run. It marshals to stable JSON (see the
// WorkerCounters schema note); the Avail histogram serialises with its
// full bucket list.
type Run struct {
	Algorithm   string           `json:"algorithm"`
	Circuit     string           `json:"circuit"`
	Horizon     circuit.Time     `json:"horizon"`
	Workers     int              `json:"workers"`
	TimeSteps   int64            `json:"time_steps"`   // active time steps processed (0 for the async algorithm)
	NodeUpdates int64            `json:"node_updates"` // node value changes applied
	Evals       int64            `json:"evals"`        // element evaluations (activations, for the async algorithm)
	ModelCalls  int64            `json:"model_calls"`  // element model-function invocations (== Evals except async)
	EventsUsed  int64            `json:"events_used"`  // input events consumed by evaluations (async)
	Wall        time.Duration    `json:"wall_ns"`
	PerWorker   []WorkerCounters `json:"per_worker"` // one row per worker
	Avail       Histogram        `json:"avail"`      // elements available for evaluation per time step
}

// Aggregate installs the per-worker counter rows, derives each worker's
// busy time from wall minus idle, and accumulates the aggregate totals.
// Every simulator finishes its stats through this one path.
func (r *Run) Aggregate(wall time.Duration, per []WorkerCounters) {
	r.Wall = wall
	r.PerWorker = per
	for i := range per {
		busy := wall - per[i].Idle
		if busy < 0 {
			busy = 0
		}
		per[i].Busy = busy
		r.NodeUpdates += per[i].NodeUpdates
		r.Evals += per[i].Evals
		r.ModelCalls += per[i].ModelCalls
		r.EventsUsed += per[i].EventsUsed
	}
}

// Totals sums the per-worker counters into one row.
func (r *Run) Totals() WorkerCounters {
	var t WorkerCounters
	for i := range r.PerWorker {
		t.Accumulate(r.PerWorker[i])
	}
	return t
}

// Utilization returns total busy time divided by workers x wall time, the
// paper's processor-utilisation metric. Returns 0 if timing was not
// collected.
func (r *Run) Utilization() float64 {
	if r.Wall <= 0 || r.Workers == 0 {
		return 0
	}
	var busy time.Duration
	for i := range r.PerWorker {
		busy += r.PerWorker[i].Busy
	}
	return float64(busy) / (float64(r.Wall) * float64(r.Workers))
}

// String formats a one-line summary.
func (r *Run) String() string {
	return fmt.Sprintf("%s on %s: P=%d steps=%d updates=%d evals=%d wall=%v util=%.0f%%",
		r.Algorithm, r.Circuit, r.Workers, r.TimeSteps, r.NodeUpdates, r.Evals,
		r.Wall.Round(time.Microsecond), 100*r.Utilization())
}

// DebugDump renders the per-worker counter rows as an aligned table for
// stall and fault diagnostics: when the supervision layer aborts a run it
// attaches this dump so the report shows where each worker got stuck
// (e.g. every row idle-polling, or one row's counters frozen).
func (r *Run) DebugDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-worker counters at abort (%s on %s, P=%d):\n",
		r.Algorithm, r.Circuit, r.Workers)
	fmt.Fprintf(&b, "  %6s %10s %10s %10s %10s %10s %10s %10s\n",
		"worker", "evals", "updates", "events", "barriers", "idlepolls", "msgs", "rollbacks")
	for i := range r.PerWorker {
		w := &r.PerWorker[i]
		fmt.Fprintf(&b, "  %6d %10d %10d %10d %10d %10d %10d %10d\n",
			i, w.Evals, w.NodeUpdates, w.EventsUsed, w.BarrierWaits,
			w.IdlePolls, w.Messages, w.Rollbacks)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Histogram counts integer observations (e.g. activated elements per time
// step).
type Histogram struct {
	counts map[int]int64
	n      int64
	sum    int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v]++
	h.n++
	h.sum += int64(v)
}

// N returns the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Bucket is one (value, count) pair of a Histogram, exposed for JSON and
// metrics rendering.
type Bucket struct {
	Value int   `json:"value"`
	Count int64 `json:"count"`
}

// Buckets returns the observed values and their counts, sorted by value.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for v, c := range h.counts {
		out = append(out, Bucket{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// histogramJSON is the stable wire form of a Histogram: sample count, sum
// and the sorted bucket list (sorted so repeated marshals are
// byte-identical).
type histogramJSON struct {
	N       int64    `json:"n"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON serialises the histogram with its full bucket list.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{N: h.n, Sum: h.sum, Buckets: h.Buckets()})
}

// UnmarshalJSON rebuilds the histogram from its wire form, so serialised
// run reports round-trip.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*h = Histogram{}
	for _, bk := range w.Buckets {
		if bk.Count <= 0 {
			continue
		}
		if h.counts == nil {
			h.counts = make(map[int]int64)
		}
		h.counts[bk.Value] = bk.Count
		h.n += bk.Count
		h.sum += int64(bk.Value) * bk.Count
	}
	return nil
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// FractionBelow returns the fraction of samples strictly less than v, or 0
// with no samples.
func (h *Histogram) FractionBelow(v int) float64 {
	if h.n == 0 {
		return 0
	}
	var below int64
	for k, c := range h.counts {
		if k < v {
			below += c
		}
	}
	return float64(below) / float64(h.n)
}

// Quantile returns the smallest observed value q of the way through the
// distribution. q is clamped to [0, 1]; an empty histogram yields 0.
func (h *Histogram) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := int64(q * float64(h.n))
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen > target {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Max returns the largest observed value, or 0 with no samples.
func (h *Histogram) Max() int {
	first := true
	max := 0
	for k := range h.counts {
		if first || k > max {
			max = k
			first = false
		}
	}
	return max
}

// Min returns the smallest observed value, or 0 with no samples.
func (h *Histogram) Min() int {
	first := true
	min := 0
	for k := range h.counts {
		if first || k < min {
			min = k
			first = false
		}
	}
	return min
}
