package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestUtilization(t *testing.T) {
	r := Run{
		Workers: 2,
		Wall:    100 * time.Millisecond,
		PerWorker: []WorkerCounters{
			{Busy: 100 * time.Millisecond},
			{Busy: 50 * time.Millisecond},
		},
	}
	if u := r.Utilization(); u != 0.75 {
		t.Errorf("utilisation = %f, want 0.75", u)
	}
	empty := Run{}
	if empty.Utilization() != 0 {
		t.Error("empty run utilisation must be 0")
	}
}

func TestAggregate(t *testing.T) {
	r := Run{Workers: 2}
	per := []WorkerCounters{
		{Evals: 3, ModelCalls: 3, NodeUpdates: 2, EventsUsed: 5, Idle: 20 * time.Millisecond},
		{Evals: 1, ModelCalls: 1, NodeUpdates: 1, EventsUsed: 2, Idle: 200 * time.Millisecond},
	}
	r.Aggregate(100*time.Millisecond, per)
	if r.Evals != 4 || r.ModelCalls != 4 || r.NodeUpdates != 3 || r.EventsUsed != 7 {
		t.Errorf("aggregate totals wrong: %+v", r)
	}
	if got := r.PerWorker[0].Busy; got != 80*time.Millisecond {
		t.Errorf("worker 0 busy = %v, want 80ms", got)
	}
	// Idle beyond wall (possible with coarse timers) clamps busy at zero.
	if got := r.PerWorker[1].Busy; got != 0 {
		t.Errorf("worker 1 busy = %v, want 0", got)
	}
	tot := r.Totals()
	if tot.Evals != 4 || tot.EventsUsed != 7 || tot.Busy != 80*time.Millisecond {
		t.Errorf("totals wrong: %+v", tot)
	}
}

func TestRunString(t *testing.T) {
	r := Run{Algorithm: "async", Circuit: "c", Workers: 3, Evals: 42,
		Wall: time.Millisecond, PerWorker: []WorkerCounters{{Busy: time.Millisecond}}}
	s := r.String()
	for _, want := range []string{"async", "P=3", "evals=42"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram accessors")
	}
	for _, v := range []int{1, 2, 2, 3, 3, 3, 10} {
		h.Observe(v)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Mean(); got < 3.42 || got > 3.44 {
		t.Errorf("Mean = %f", got)
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d", h.Max())
	}
	if h.Min() != 1 {
		t.Errorf("Min = %d", h.Min())
	}
	if got := h.FractionBelow(3); got != 3.0/7 {
		t.Errorf("FractionBelow(3) = %f", got)
	}
	if got := h.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %f", got)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %d", q)
	}
	if q := h.Quantile(0.999); q != 10 {
		t.Errorf("q0.999 = %d", q)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var empty Histogram
	if empty.Max() != 0 || empty.Min() != 0 {
		t.Error("empty Max/Min must be 0")
	}
	if empty.FractionBelow(5) != 0 {
		t.Error("empty FractionBelow must be 0")
	}
	if empty.Quantile(1.0) != 0 || empty.Quantile(-1) != 0 {
		t.Error("empty Quantile must be 0")
	}

	var h Histogram
	for _, v := range []int{4, 7, 9} {
		h.Observe(v)
	}
	// Quantile(1.0) is the maximum, not an out-of-range index.
	if q := h.Quantile(1.0); q != 9 {
		t.Errorf("Quantile(1.0) = %d, want 9", q)
	}
	// Out-of-range q clamps rather than panicking.
	if q := h.Quantile(2.5); q != 9 {
		t.Errorf("Quantile(2.5) = %d, want 9", q)
	}
	if q := h.Quantile(-0.5); q != 4 {
		t.Errorf("Quantile(-0.5) = %d, want 4", q)
	}

	// Max/Min work with all-negative observations (no zero sentinel bias).
	var neg Histogram
	for _, v := range []int{-5, -2, -9} {
		neg.Observe(v)
	}
	if neg.Max() != -2 {
		t.Errorf("negative Max = %d, want -2", neg.Max())
	}
	if neg.Min() != -9 {
		t.Errorf("negative Min = %d, want -9", neg.Min())
	}
}

func TestQuickHistogramInvariants(t *testing.T) {
	f := func(vals []uint8) bool {
		var h Histogram
		sum := 0
		for _, v := range vals {
			h.Observe(int(v))
			sum += int(v)
		}
		if len(vals) == 0 {
			return h.N() == 0
		}
		// Mean matches, quantiles are observed values and monotone.
		if h.N() != int64(len(vals)) {
			return false
		}
		mean := float64(sum) / float64(len(vals))
		if diff := h.Mean() - mean; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		if h.Quantile(1) != h.Max() || h.Quantile(0) != h.Min() {
			return false
		}
		return h.Quantile(0) <= h.Quantile(0.5) && h.Quantile(0.5) <= h.Quantile(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int{3, 1, 1, 7, 3, 3} {
		h.Observe(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":6,"sum":18,"buckets":[{"value":1,"count":2},{"value":3,"count":3},{"value":7,"count":1}]}`
	if string(b) != want {
		t.Fatalf("histogram JSON:\n got %s\nwant %s", b, want)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != h.N() || back.Sum() != h.Sum() || back.Mean() != h.Mean() {
		t.Fatalf("round-trip lost samples: n=%d sum=%d", back.N(), back.Sum())
	}
	if back.Max() != 7 || back.Min() != 1 {
		t.Fatalf("round-trip lost extremes: min=%d max=%d", back.Min(), back.Max())
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	var h Histogram
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"n":0,"sum":0}` {
		t.Fatalf("empty histogram JSON: %s", b)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 {
		t.Fatalf("empty round-trip gained samples: %d", back.N())
	}
}

// TestRunJSONSchema pins the exported field names the CLI and the daemon
// share: a schema change here is a breaking change for both.
func TestRunJSONSchema(t *testing.T) {
	r := Run{Algorithm: "sequential", Circuit: "c", Horizon: 10, Workers: 1, Wall: time.Millisecond}
	r.Avail.Observe(2)
	r.Aggregate(time.Millisecond, []WorkerCounters{{Evals: 5, NodeUpdates: 3}})
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"algorithm", "circuit", "horizon", "workers", "time_steps",
		"node_updates", "evals", "model_calls", "events_used", "wall_ns",
		"per_worker", "avail",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("run JSON missing %q: %s", key, b)
		}
	}
	pw, ok := m["per_worker"].([]any)
	if !ok || len(pw) != 1 {
		t.Fatalf("per_worker malformed: %s", b)
	}
	row := pw[0].(map[string]any)
	for _, key := range []string{"evals", "node_updates", "busy_ns", "idle_ns"} {
		if _, ok := row[key]; !ok {
			t.Errorf("worker row missing %q: %s", key, b)
		}
	}
	var back Run
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Evals != r.Evals || back.Avail.N() != 1 {
		t.Fatalf("run round-trip mismatch: %+v", back)
	}
}
