package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestUtilization(t *testing.T) {
	r := Run{
		Workers: 2,
		Wall:    100 * time.Millisecond,
		Busy:    []time.Duration{100 * time.Millisecond, 50 * time.Millisecond},
	}
	if u := r.Utilization(); u != 0.75 {
		t.Errorf("utilisation = %f, want 0.75", u)
	}
	empty := Run{}
	if empty.Utilization() != 0 {
		t.Error("empty run utilisation must be 0")
	}
}

func TestRunString(t *testing.T) {
	r := Run{Algorithm: "async", Circuit: "c", Workers: 3, Evals: 42,
		Wall: time.Millisecond, Busy: []time.Duration{time.Millisecond}}
	s := r.String()
	for _, want := range []string{"async", "P=3", "evals=42"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram accessors")
	}
	for _, v := range []int{1, 2, 2, 3, 3, 3, 10} {
		h.Observe(v)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Mean(); got < 3.42 || got > 3.44 {
		t.Errorf("Mean = %f", got)
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.FractionBelow(3); got != 3.0/7 {
		t.Errorf("FractionBelow(3) = %f", got)
	}
	if got := h.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %f", got)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %d", q)
	}
	if q := h.Quantile(0.999); q != 10 {
		t.Errorf("q0.999 = %d", q)
	}
}

func TestQuickHistogramInvariants(t *testing.T) {
	f := func(vals []uint8) bool {
		var h Histogram
		sum := 0
		for _, v := range vals {
			h.Observe(int(v))
			sum += int(v)
		}
		if len(vals) == 0 {
			return h.N() == 0
		}
		// Mean matches, quantiles are observed values and monotone.
		if h.N() != int64(len(vals)) {
			return false
		}
		mean := float64(sum) / float64(len(vals))
		if diff := h.Mean() - mean; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return h.Quantile(0) <= h.Quantile(0.5) && h.Quantile(0.5) <= h.Quantile(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
