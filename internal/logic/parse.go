package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseValue parses the Verilog-style literal syntax String produces:
// "<width>'b<bits>" with bits over 01xz, "<width>'h<hex>" for fully known
// values, or "<width>'d<decimal>".
func ParseValue(s string) (Value, error) {
	tick := strings.IndexByte(s, '\'')
	if tick <= 0 || tick+2 > len(s) {
		return Value{}, fmt.Errorf("logic: bad value literal %q", s)
	}
	width, err := strconv.Atoi(s[:tick])
	if err != nil || width < 1 || width > MaxWidth {
		return Value{}, fmt.Errorf("logic: bad width in value literal %q", s)
	}
	base := s[tick+1]
	digits := s[tick+2:]
	if digits == "" {
		return Value{}, fmt.Errorf("logic: empty digits in value literal %q", s)
	}
	switch base {
	case 'b':
		if len(digits) != width {
			return Value{}, fmt.Errorf("logic: literal %q has %d digits for width %d", s, len(digits), width)
		}
		states := make([]State, width)
		for i, ch := range digits {
			var st State
			switch ch {
			case '0':
				st = L
			case '1':
				st = H
			case 'x', 'X':
				st = X
			case 'z', 'Z':
				st = Z
			default:
				return Value{}, fmt.Errorf("logic: bad binary digit %q in %q", ch, s)
			}
			// Digits are written most-significant first.
			states[width-1-i] = st
		}
		return FromStates(states), nil
	case 'h':
		u, err := strconv.ParseUint(digits, 16, 64)
		if err != nil {
			return Value{}, fmt.Errorf("logic: bad hex literal %q: %v", s, err)
		}
		if width < 64 && u >= 1<<uint(width) {
			return Value{}, fmt.Errorf("logic: literal %q overflows width %d", s, width)
		}
		return V(width, u), nil
	case 'd':
		u, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("logic: bad decimal literal %q: %v", s, err)
		}
		if width < 64 && u >= 1<<uint(width) {
			return Value{}, fmt.Errorf("logic: literal %q overflows width %d", s, width)
		}
		return V(width, u), nil
	}
	return Value{}, fmt.Errorf("logic: unknown base %q in value literal %q", base, s)
}
