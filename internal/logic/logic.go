// Package logic implements the four-state logic value system used by every
// simulator in this repository.
//
// A single wire carries one of four states: strong low (L), strong high (H),
// unknown (X) and high impedance (Z). Multi-bit buses (up to 64 bits wide)
// are first-class: a Value is a fixed-width vector of states stored in three
// bit planes, so bitwise gate operations over whole buses cost a handful of
// word operations. This matches the paper's need to simulate models "at
// different representation levels" — single-bit gates, RTL registers and
// functional blocks such as 8-bit adders share one value type.
package logic

import (
	"fmt"
	"strings"
)

// State is the value of a single wire bit.
type State uint8

// The four wire states. The zero value is L so freshly allocated storage
// holds a legal (if arbitrary) state; simulators explicitly initialise nodes
// to X as the paper does ("node 4 is only known to be X at time 0").
const (
	L State = iota // strong 0
	H              // strong 1
	X              // unknown
	Z              // high impedance
)

// String returns the conventional single-character name of the state.
func (s State) String() string {
	switch s {
	case L:
		return "0"
	case H:
		return "1"
	case X:
		return "x"
	case Z:
		return "z"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether s is one of the four defined states.
func (s State) Valid() bool { return s <= Z }

// IsKnown reports whether s is a strong 0 or 1.
func (s State) IsKnown() bool { return s == L || s == H }

// MaxWidth is the widest supported bus.
const MaxWidth = 64

// Value is a fixed-width bus of States. The width is part of the value;
// operations on mismatched widths panic, which turns circuit wiring bugs
// into immediate failures instead of silent truncation.
//
// Representation: three planes indexed by bit position. A bit is Z if its
// hiz plane bit is set; otherwise X if its unk plane bit is set; otherwise
// the bits plane gives 0 or 1. Plane bits above the width are always zero
// (the canonical form), so Values are comparable with ==.
type Value struct {
	bits  uint64
	unk   uint64
	hiz   uint64
	width uint8
}

func mask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

func checkWidth(width int) uint8 {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("logic: width %d out of range [1,%d]", width, MaxWidth))
	}
	return uint8(width)
}

// V returns a fully known value of the given width; bits above the width are
// discarded.
func V(width int, bits uint64) Value {
	w := checkWidth(width)
	return Value{bits: bits & mask(w), width: w}
}

// AllX returns a value of the given width with every bit unknown.
func AllX(width int) Value {
	w := checkWidth(width)
	return Value{unk: mask(w), width: w}
}

// AllZ returns a value of the given width with every bit high impedance.
func AllZ(width int) Value {
	w := checkWidth(width)
	return Value{hiz: mask(w), width: w}
}

// FromState returns a 1-bit value holding s.
func FromState(s State) Value {
	switch s {
	case L:
		return V(1, 0)
	case H:
		return V(1, 1)
	case X:
		return AllX(1)
	case Z:
		return AllZ(1)
	}
	panic("logic: invalid state " + s.String())
}

// FromStates builds a value from states, index 0 being the least significant
// bit.
func FromStates(states []State) Value {
	w := checkWidth(len(states))
	var v Value
	v.width = w
	for i, s := range states {
		bit := uint64(1) << uint(i)
		switch s {
		case H:
			v.bits |= bit
		case X:
			v.unk |= bit
		case Z:
			v.hiz |= bit
		case L:
		default:
			panic("logic: invalid state " + s.String())
		}
	}
	return v
}

// Width returns the bus width in bits.
func (v Value) Width() int { return int(v.width) }

// Bit returns the state of bit i (0 = least significant).
func (v Value) Bit(i int) State {
	if i < 0 || i >= int(v.width) {
		panic(fmt.Sprintf("logic: bit %d out of range for width %d", i, v.width))
	}
	bit := uint64(1) << uint(i)
	switch {
	case v.hiz&bit != 0:
		return Z
	case v.unk&bit != 0:
		return X
	case v.bits&bit != 0:
		return H
	default:
		return L
	}
}

// State returns the state of a 1-bit value.
func (v Value) State() State {
	if v.width != 1 {
		panic(fmt.Sprintf("logic: State on %d-bit value", v.width))
	}
	return v.Bit(0)
}

// IsKnown reports whether every bit is a strong 0 or 1.
func (v Value) IsKnown() bool { return v.unk == 0 && v.hiz == 0 }

// HasZ reports whether any bit is high impedance.
func (v Value) HasZ() bool { return v.hiz != 0 }

// Uint returns the bus interpreted as an unsigned integer. The second result
// is false if any bit is X or Z.
func (v Value) Uint() (uint64, bool) {
	if !v.IsKnown() {
		return 0, false
	}
	return v.bits, true
}

// MustUint is Uint for values known to be fully defined; it panics otherwise.
func (v Value) MustUint() uint64 {
	u, ok := v.Uint()
	if !ok {
		panic("logic: MustUint on partially unknown value " + v.String())
	}
	return u
}

// String formats the value Verilog-style, e.g. "4'b10xz", using hex when the
// value is fully known and wider than 4 bits.
func (v Value) String() string {
	if v.IsKnown() && v.width > 4 {
		return fmt.Sprintf("%d'h%x", v.width, v.bits)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d'b", v.width)
	for i := int(v.width) - 1; i >= 0; i-- {
		b.WriteString(v.Bit(i).String())
	}
	return b.String()
}

// Equal reports whether two values have identical width and per-bit states.
// It is equivalent to == and exists for readability at call sites.
func (v Value) Equal(o Value) bool { return v == o }

// sameWidth panics unless the operands have equal widths.
func sameWidth(a, b Value, op string) {
	if a.width != b.width {
		panic(fmt.Sprintf("logic: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// readable converts Z bits to X for input to a logic operation: a gate that
// samples a floating wire reads an unknown.
func (v Value) readable() Value {
	v.unk |= v.hiz
	v.hiz = 0
	return v
}

// Not returns the bitwise complement; X and Z bits yield X.
func (v Value) Not() Value {
	v = v.readable()
	return Value{bits: ^v.bits & mask(v.width) &^ v.unk, unk: v.unk, width: v.width}
}

// And returns the bitwise AND with controlling-value semantics: 0 AND x = 0,
// 1 AND x = x.
func (v Value) And(o Value) Value {
	sameWidth(v, o, "And")
	a, b := v.readable(), o.readable()
	// A result bit is 0 when either operand bit is a known 0; it is 1 when
	// both are known 1; otherwise X.
	knownA := mask(a.width) &^ a.unk
	knownB := mask(b.width) &^ b.unk
	zero := (knownA &^ a.bits) | (knownB &^ b.bits)
	one := (knownA & a.bits) & (knownB & b.bits)
	unk := mask(a.width) &^ (zero | one)
	return Value{bits: one, unk: unk, width: a.width}
}

// Or returns the bitwise OR with controlling-value semantics: 1 OR x = 1.
func (v Value) Or(o Value) Value {
	sameWidth(v, o, "Or")
	a, b := v.readable(), o.readable()
	knownA := mask(a.width) &^ a.unk
	knownB := mask(b.width) &^ b.unk
	one := (knownA & a.bits) | (knownB & b.bits)
	zero := (knownA &^ a.bits) & (knownB &^ b.bits)
	unk := mask(a.width) &^ (zero | one)
	return Value{bits: one, unk: unk, width: a.width}
}

// Xor returns the bitwise XOR; any X or Z input bit yields X.
func (v Value) Xor(o Value) Value {
	sameWidth(v, o, "Xor")
	a, b := v.readable(), o.readable()
	unk := a.unk | b.unk
	return Value{bits: (a.bits ^ b.bits) &^ unk, unk: unk, width: a.width}
}

// Nand returns Not(And).
func (v Value) Nand(o Value) Value { return v.And(o).Not() }

// Nor returns Not(Or).
func (v Value) Nor(o Value) Value { return v.Or(o).Not() }

// Xnor returns Not(Xor).
func (v Value) Xnor(o Value) Value { return v.Xor(o).Not() }

// Add returns v + o (mod 2^width). If any input bit is X or Z the entire
// result is X: functional blocks poison their outputs on unknown inputs,
// which is the conservative RTL-level behaviour the paper's functional
// elements use.
func (v Value) Add(o Value) Value {
	sameWidth(v, o, "Add")
	if !v.IsKnown() || !o.IsKnown() {
		return AllX(int(v.width))
	}
	return V(int(v.width), v.bits+o.bits)
}

// AddCarry returns the width-bit sum and the 1-bit carry out.
func (v Value) AddCarry(o Value, cin Value) (sum, cout Value) {
	sameWidth(v, o, "AddCarry")
	if cin.width != 1 {
		panic("logic: AddCarry carry-in must be 1 bit")
	}
	if !v.IsKnown() || !o.IsKnown() || !cin.IsKnown() {
		return AllX(int(v.width)), AllX(1)
	}
	total := v.bits + o.bits + cin.bits
	if v.width < 64 {
		return V(int(v.width), total), V(1, total>>v.width)
	}
	// 64-bit: detect carry via unsigned overflow.
	s := v.bits + o.bits
	carry := uint64(0)
	if s < v.bits {
		carry = 1
	}
	s2 := s + cin.bits
	if s2 < s {
		carry = 1
	}
	return V(64, s2), V(1, carry)
}

// Sub returns v - o (mod 2^width), poisoning on unknowns.
func (v Value) Sub(o Value) Value {
	sameWidth(v, o, "Sub")
	if !v.IsKnown() || !o.IsKnown() {
		return AllX(int(v.width))
	}
	return V(int(v.width), v.bits-o.bits)
}

// Mul returns v * o truncated to the given result width, poisoning on
// unknowns. Operand widths need not match the result width.
func Mul(a, b Value, resultWidth int) Value {
	if !a.IsKnown() || !b.IsKnown() {
		return AllX(resultWidth)
	}
	return V(resultWidth, a.bits*b.bits)
}

// Eq returns a 1-bit value: H if the values are provably equal, L if
// provably different (some known bit pair differs), X otherwise.
func (v Value) Eq(o Value) Value {
	sameWidth(v, o, "Eq")
	a, b := v.readable(), o.readable()
	knownBoth := mask(a.width) &^ (a.unk | b.unk)
	if (a.bits^b.bits)&knownBoth != 0 {
		return V(1, 0)
	}
	if knownBoth == mask(a.width) {
		return V(1, 1)
	}
	return AllX(1)
}

// Mux returns a when sel is 0, b when sel is 1. When sel is X or Z the
// result keeps the bits on which a and b agree and is X elsewhere.
func Mux(sel, a, b Value) Value {
	sameWidth(a, b, "Mux")
	switch sel.State() {
	case L:
		return a.readable()
	case H:
		return b.readable()
	default:
		ra, rb := a.readable(), b.readable()
		agree := ^(ra.bits ^ rb.bits) &^ (ra.unk | rb.unk) & mask(a.width)
		return Value{bits: ra.bits & agree, unk: mask(a.width) &^ agree, width: a.width}
	}
}

// Resolve merges two drivers of the same wire: Z yields to the other driver,
// agreement keeps the value, conflict or X produces X. This is the standard
// wired-bus resolution function.
func Resolve(a, b Value) Value {
	sameWidth(a, b, "Resolve")
	w := int(a.width)
	states := make([]State, w)
	for i := 0; i < w; i++ {
		sa, sb := a.Bit(i), b.Bit(i)
		switch {
		case sa == Z:
			states[i] = sb
		case sb == Z:
			states[i] = sa
		case sa == sb && sa != X:
			states[i] = sa
		default:
			states[i] = X
		}
	}
	return FromStates(states)
}

// Slice returns bits [lo, lo+width) as a new value. Slicing beyond the
// source width panics.
func (v Value) Slice(lo, width int) Value {
	if lo < 0 || width < 1 || lo+width > int(v.width) {
		panic(fmt.Sprintf("logic: slice [%d,%d) of %d-bit value", lo, lo+width, v.width))
	}
	w := uint8(width)
	return Value{
		bits:  (v.bits >> uint(lo)) & mask(w),
		unk:   (v.unk >> uint(lo)) & mask(w),
		hiz:   (v.hiz >> uint(lo)) & mask(w),
		width: w,
	}
}

// Concat returns the concatenation with hi in the upper bits and v in the
// lower bits.
func (v Value) Concat(hi Value) Value {
	total := int(v.width) + int(hi.width)
	w := checkWidth(total)
	return Value{
		bits:  v.bits | hi.bits<<v.width,
		unk:   v.unk | hi.unk<<v.width,
		hiz:   v.hiz | hi.hiz<<v.width,
		width: w,
	}
}

// Extend zero-extends (or truncates) the value to the given width. X/Z bits
// within the kept range are preserved; new high bits are 0.
func (v Value) Extend(width int) Value {
	w := checkWidth(width)
	m := mask(w)
	return Value{bits: v.bits & m, unk: v.unk & m, hiz: v.hiz & m, width: w}
}

// ReduceAnd folds AND across all bits of v, returning a 1-bit value.
func (v Value) ReduceAnd() Value {
	r := v.readable()
	if r.bits&^r.unk != mask(v.width)&^r.unk {
		return V(1, 0) // some known 0 bit
	}
	if r.unk != 0 {
		return AllX(1)
	}
	return V(1, 1)
}

// ReduceOr folds OR across all bits of v, returning a 1-bit value.
func (v Value) ReduceOr() Value {
	r := v.readable()
	if r.bits&^r.unk != 0 {
		return V(1, 1) // some known 1 bit
	}
	if r.unk != 0 {
		return AllX(1)
	}
	return V(1, 0)
}

// ReduceXor folds XOR across all bits; any unknown bit yields X.
func (v Value) ReduceXor() Value {
	r := v.readable()
	if r.unk != 0 {
		return AllX(1)
	}
	n := uint64(0)
	for b := r.bits; b != 0; b &= b - 1 {
		n++
	}
	return V(1, n&1)
}

// ShiftLeft returns v << n with zero fill.
func (v Value) ShiftLeft(n int) Value {
	if n < 0 {
		panic("logic: negative shift")
	}
	if n >= int(v.width) {
		return V(int(v.width), 0)
	}
	m := mask(v.width)
	return Value{
		bits:  v.bits << uint(n) & m,
		unk:   v.unk << uint(n) & m,
		hiz:   v.hiz << uint(n) & m,
		width: v.width,
	}
}

// ShiftRight returns v >> n with zero fill.
func (v Value) ShiftRight(n int) Value {
	if n < 0 {
		panic("logic: negative shift")
	}
	if n >= int(v.width) {
		return V(int(v.width), 0)
	}
	return Value{
		bits:  v.bits >> uint(n),
		unk:   v.unk >> uint(n),
		hiz:   v.hiz >> uint(n),
		width: v.width,
	}
}
