package logic

import (
	"math/rand"
	"testing"
)

var wideWidths = []int{64, 256, 1024}

// newWide allocates a standalone lanes-wide plane (tests only; the engine
// views into shared flat buffers instead).
func newWide(lanes int) WidePlane {
	w := PlaneWords(lanes)
	return WidePlane{V: make([]uint64, w), U: make([]uint64, w)}
}

func TestWidePlaneWords(t *testing.T) {
	cases := []struct{ lanes, words int }{
		{1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
		{256, 4}, {1024, 16}, {MaxWideLanes, 64},
	}
	for _, c := range cases {
		if got := PlaneWords(c.lanes); got != c.words {
			t.Errorf("PlaneWords(%d) = %d, want %d", c.lanes, got, c.words)
		}
	}
	for _, bad := range []int{0, -1, MaxWideLanes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PlaneWords(%d) did not panic", bad)
				}
			}()
			PlaneWords(bad)
		}()
	}
}

// TestWidePlaneLaneRoundTrip proves the lane accessors agree with the
// proven single-word Plane accessors at every lane of every width.
func TestWidePlaneLaneRoundTrip(t *testing.T) {
	states := []State{L, H, X, Z}
	for _, lanes := range wideWidths {
		p := newWide(lanes)
		for i := 0; i < lanes; i++ {
			s := states[(i*7+i/64)%4]
			p.SetLane(i, s)
		}
		for i := 0; i < lanes; i++ {
			want := states[(i*7+i/64)%4]
			if got := p.Lane(i); got != want {
				t.Fatalf("lanes=%d lane %d = %v, want %v", lanes, i, got, want)
			}
			// Cross-check against the single-word accessor on the word view.
			if got := p.Word(i >> 6).Lane(i & 63); got != want {
				t.Fatalf("lanes=%d word view lane %d = %v, want %v", lanes, i, got, want)
			}
		}
	}
}

func TestWidePlaneWordViewAliases(t *testing.T) {
	p := newWide(256)
	p.SetWord(2, PlaneBroadcast(H))
	if p.Lane(128) != H || p.Lane(191) != H || p.Lane(127) != L || p.Lane(192) != L {
		t.Fatalf("SetWord(2) did not hit lanes [128,192): %v %v", p.Lane(128), p.Lane(192))
	}
	if got := p.Word(2); got != PlaneBroadcast(H) {
		t.Fatalf("Word(2) = %+v", got)
	}
	if p.Words() != 4 {
		t.Fatalf("Words() = %d", p.Words())
	}
}

func TestWidePlaneFill(t *testing.T) {
	for _, lanes := range []int{64, 192} {
		p := newWide(lanes)
		p.Fill(X)
		for i := 0; i < lanes; i++ {
			if p.Lane(i) != X {
				t.Fatalf("lanes=%d lane %d not X after Fill", lanes, i)
			}
		}
	}
}

func TestWideLaneMasks(t *testing.T) {
	cases := []struct {
		lanes int
		want  []uint64
	}{
		{64, []uint64{^uint64(0)}},
		{65, []uint64{^uint64(0), 1}},
		{100, []uint64{^uint64(0), 1<<36 - 1}},
		{256, []uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}},
	}
	for _, c := range cases {
		got := LaneMasks(c.lanes)
		if len(got) != len(c.want) {
			t.Fatalf("LaneMasks(%d) len = %d, want %d", c.lanes, len(got), len(c.want))
		}
		for w := range got {
			if got[w] != c.want[w] {
				t.Fatalf("LaneMasks(%d)[%d] = %#x, want %#x", c.lanes, w, got[w], c.want[w])
			}
		}
	}
}

// TestWidePackExtractRoundTrip round-trips random Values through every
// lane of a wide bus at multiple widths, and cross-checks word 0 against
// the proven single-word PackLane/ExtractLane.
func TestWidePackExtractRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, lanes := range wideWidths {
		const busW = 8
		wide := make([]WidePlane, busW)
		for i := range wide {
			wide[i] = newWide(lanes)
		}
		want := make([]Value, lanes)
		for lane := 0; lane < lanes; lane++ {
			want[lane] = randomValue(r, busW)
			PackLaneWide(wide, lane, want[lane])
		}
		for lane := 0; lane < lanes; lane++ {
			if got := ExtractLaneWide(wide, lane, busW); got != want[lane] {
				t.Fatalf("lanes=%d lane %d: %v, want %v", lanes, lane, got, want[lane])
			}
		}
		// Word 0 of the wide bus must be bit-identical to a narrow bus
		// packed with the same first 64 values.
		narrow := make([]Plane, busW)
		for lane := 0; lane < 64; lane++ {
			PackLane(narrow, lane, want[lane])
		}
		for i := range narrow {
			if wide[i].Word(0) != narrow[i] {
				t.Fatalf("lanes=%d plane %d word 0 differs from narrow pack", lanes, i)
			}
		}
	}
}

// TestWidePackLanePreservesOtherLanes packs into one lane and checks no
// neighbour, in-word or cross-word, is disturbed.
func TestWidePackLanePreservesOtherLanes(t *testing.T) {
	const lanes, busW = 256, 4
	r := rand.New(rand.NewSource(7))
	wide := make([]WidePlane, busW)
	for i := range wide {
		wide[i] = newWide(lanes)
	}
	vals := make([]Value, lanes)
	for lane := 0; lane < lanes; lane++ {
		vals[lane] = randomValue(r, busW)
		PackLaneWide(wide, lane, vals[lane])
	}
	// Overwrite a mid-bus lane and re-check all others.
	vals[130] = AllZ(busW)
	PackLaneWide(wide, 130, vals[130])
	for lane := 0; lane < lanes; lane++ {
		if got := ExtractLaneWide(wide, lane, busW); got != vals[lane] {
			t.Fatalf("lane %d disturbed: %v, want %v", lane, got, vals[lane])
		}
	}
}

// TestWideBroadcastValue proves BroadcastValueWide fills every lane of
// every word and matches the single-word BroadcastValue on each word.
func TestWideBroadcastValue(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, lanes := range []int{64, 1024} {
		const busW = 6
		wide := make([]WidePlane, busW)
		for i := range wide {
			wide[i] = newWide(lanes)
		}
		v := randomValue(r, busW)
		BroadcastValueWide(wide, v)
		narrow := make([]Plane, busW)
		BroadcastValue(narrow, v)
		for i := range wide {
			for w := 0; w < wide[i].Words(); w++ {
				if wide[i].Word(w) != narrow[i] {
					t.Fatalf("lanes=%d plane %d word %d differs from narrow broadcast", lanes, i, w)
				}
			}
		}
		for lane := 0; lane < lanes; lane += 17 {
			if got := ExtractLaneWide(wide, lane, busW); got != v {
				t.Fatalf("lanes=%d lane %d: %v, want %v", lanes, lane, got, v)
			}
		}
	}
}
