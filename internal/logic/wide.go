package logic

import "fmt"

// MaxWideLanes is the widest supported batched run: 64 plane words of 64
// lanes each. The cap is a sanity bound on buffer sizing, not an
// architectural limit; one more word buys 64 more lanes everywhere.
const MaxWideLanes = 64 * MaxLanes

// PlaneWords returns how many 64-lane Plane words carry the given number of
// stimulus lanes — the width, in words, of every WidePlane of a run.
func PlaneWords(lanes int) int {
	if lanes < 1 || lanes > MaxWideLanes {
		panic(fmt.Sprintf("logic: lane count %d out of range [1,%d]", lanes, MaxWideLanes))
	}
	return (lanes + MaxLanes - 1) / MaxLanes
}

// WidePlane is the N-word generalisation of Plane: one bit position of a
// bus across an arbitrary number of stimulus lanes. Word w carries lanes
// [64w, 64w+64) with exactly Plane's V/U encoding, so every word-level
// operation proven over Plane applies unchanged to each word of a
// WidePlane. The V and U slices are views into a run's struct-of-arrays
// backing buffers (the value words of all planes in one flat []uint64, the
// undefined words in another); they always have equal length.
type WidePlane struct {
	V, U []uint64
}

// Words returns the plane width in 64-lane words.
func (p WidePlane) Words() int { return len(p.V) }

// Word returns word w — lanes [64w, 64w+64) — as a Plane, the carrier of
// all word-level operations.
func (p WidePlane) Word(w int) Plane { return Plane{V: p.V[w], U: p.U[w]} }

// SetWord stores q into word w.
func (p WidePlane) SetWord(w int, q Plane) { p.V[w], p.U[w] = q.V, q.U }

// Lane returns the state held in lane i.
func (p WidePlane) Lane(i int) State { return p.Word(i >> 6).Lane(i & 63) }

// SetLane stores s into lane i.
func (p WidePlane) SetLane(i int, s State) {
	q := p.Word(i >> 6)
	q.SetLane(i&63, s)
	p.SetWord(i>>6, q)
}

// Fill sets every lane of p to s.
func (p WidePlane) Fill(s State) {
	q := PlaneBroadcast(s)
	for w := range p.V {
		p.V[w], p.U[w] = q.V, q.U
	}
}

// LaneMasks returns the per-word live-lane masks of a lanes-wide run: full
// words of ones with the final partial word masked, the wide form of the
// single-word lane mask the 64-lane engine kept.
func LaneMasks(lanes int) []uint64 {
	words := PlaneWords(lanes)
	m := make([]uint64, words)
	for w := range m {
		m[w] = ^uint64(0)
	}
	if r := lanes & 63; r != 0 {
		m[words-1] = 1<<uint(r) - 1
	}
	return m
}

// ---- packed-bus helpers ----
//
// A batched bus of width w is a []WidePlane of length w, planes[i] holding
// bit i of every lane. These mirror PackLane / ExtractLane /
// BroadcastValue; a lane lives entirely inside one word, so each helper
// touches exactly one word per plane.

// PackLaneWide writes v into lane of the wide bus planes[0:v.Width()].
func PackLaneWide(planes []WidePlane, lane int, v Value) {
	if len(planes) < int(v.width) {
		panic(fmt.Sprintf("logic: PackLaneWide %d-bit value into %d planes", v.width, len(planes)))
	}
	wd := lane >> 6
	bit := uint64(1) << uint(lane&63)
	for i := 0; i < int(v.width); i++ {
		p := planes[i]
		vw, uw := p.V[wd]&^bit, p.U[wd]&^bit
		pos := uint64(1) << uint(i)
		if v.hiz&pos != 0 {
			vw |= bit
			uw |= bit
		} else if v.unk&pos != 0 {
			uw |= bit
		} else if v.bits&pos != 0 {
			vw |= bit
		}
		p.V[wd], p.U[wd] = vw, uw
	}
}

// ExtractLaneWide reads lane of the width-bit bus planes[0:width] as a
// Value.
func ExtractLaneWide(planes []WidePlane, lane, width int) Value {
	w := checkWidth(width)
	wd := lane >> 6
	bit := uint64(1) << uint(lane&63)
	var v Value
	v.width = w
	for i := 0; i < width; i++ {
		p := planes[i]
		pos := uint64(1) << uint(i)
		switch {
		case p.V[wd]&bit != 0 && p.U[wd]&bit != 0:
			v.hiz |= pos
		case p.U[wd]&bit != 0:
			v.unk |= pos
		case p.V[wd]&bit != 0:
			v.bits |= pos
		}
	}
	return v
}

// BroadcastValueWide fills dst[0:v.Width()] with v replicated into every
// lane.
func BroadcastValueWide(dst []WidePlane, v Value) {
	if len(dst) < int(v.width) {
		panic(fmt.Sprintf("logic: BroadcastValueWide %d-bit value into %d planes", v.width, len(dst)))
	}
	all := ^uint64(0)
	for i := 0; i < int(v.width); i++ {
		pos := uint64(1) << uint(i)
		var q Plane
		switch {
		case v.hiz&pos != 0:
			q = Plane{V: all, U: all}
		case v.unk&pos != 0:
			q = Plane{U: all}
		case v.bits&pos != 0:
			q = Plane{V: all}
		}
		dst[i].SetWord(0, q)
		for w := 1; w < len(dst[i].V); w++ {
			dst[i].SetWord(w, q)
		}
	}
}
