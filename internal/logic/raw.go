package logic

import "fmt"

// Raw exposes the three bit planes and the width of v for serialisation.
// The returned planes are in canonical form: pairwise disjoint and masked
// to the width. FromRaw is the inverse.
func (v Value) Raw() (bits, unk, hiz uint64, width uint8) {
	return v.bits, v.unk, v.hiz, v.width
}

// FromRaw rebuilds a Value from raw planes previously obtained via Raw.
// It rejects non-canonical input — out-of-range width, plane bits above the
// width, or overlapping planes — so corrupted or hand-crafted snapshots
// cannot smuggle in values that would break the == comparability invariant.
func FromRaw(bits, unk, hiz uint64, width uint8) (Value, error) {
	if width < 1 || width > MaxWidth {
		return Value{}, fmt.Errorf("logic: raw width %d out of range [1,%d]", width, MaxWidth)
	}
	m := mask(width)
	if bits&^m != 0 || unk&^m != 0 || hiz&^m != 0 {
		return Value{}, fmt.Errorf("logic: raw planes have bits above width %d", width)
	}
	// hiz dominates unk dominates bits: a canonical value keeps the
	// shadowed planes clear.
	if unk&hiz != 0 || bits&(unk|hiz) != 0 {
		return Value{}, fmt.Errorf("logic: raw planes overlap (non-canonical value)")
	}
	return Value{bits: bits, unk: unk, hiz: hiz, width: width}, nil
}
