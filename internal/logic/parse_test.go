package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"1'b1", V(1, 1)},
		{"1'b0", V(1, 0)},
		{"4'b10xz", FromStates([]State{Z, X, L, H})},
		{"8'hff", V(8, 255)},
		{"8'hAB", V(8, 0xab)},
		{"16'd1234", V(16, 1234)},
		{"64'hffffffffffffffff", V(64, ^uint64(0))},
		{"2'bxx", AllX(2)},
		{"3'bzzz", AllZ(3)},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	bad := []string{
		"", "'b1", "4b1010", "4'", "4'b", "4'b101", "4'b10102", "4'q1010",
		"0'b", "65'h0", "4'hff", "4'd16", "x'b1", "4'dxyz", "-1'b1",
	}
	for _, s := range bad {
		if v, err := ParseValue(s); err == nil {
			t.Errorf("ParseValue(%q) = %v, want error", s, v)
		}
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(MaxWidth)
		v := randomValue(r, w)
		got, err := ParseValue(v.String())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
