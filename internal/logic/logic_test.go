package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{L: "0", H: "1", X: "x", Z: "z"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
	if got := State(9).String(); got != "State(9)" {
		t.Errorf("invalid state formatted as %q", got)
	}
}

func TestStatePredicates(t *testing.T) {
	if !L.Valid() || !H.Valid() || !X.Valid() || !Z.Valid() {
		t.Error("defined states must be Valid")
	}
	if State(4).Valid() {
		t.Error("State(4) must not be Valid")
	}
	if !L.IsKnown() || !H.IsKnown() {
		t.Error("L and H are known")
	}
	if X.IsKnown() || Z.IsKnown() {
		t.Error("X and Z are not known")
	}
}

func TestVConstruction(t *testing.T) {
	v := V(4, 0b1010)
	if v.Width() != 4 {
		t.Fatalf("width = %d, want 4", v.Width())
	}
	want := []State{L, H, L, H}
	for i, s := range want {
		if got := v.Bit(i); got != s {
			t.Errorf("bit %d = %v, want %v", i, got, s)
		}
	}
	if u := v.MustUint(); u != 0b1010 {
		t.Errorf("MustUint = %d, want 10", u)
	}
}

func TestVTruncatesHighBits(t *testing.T) {
	v := V(4, 0xff)
	if u := v.MustUint(); u != 0xf {
		t.Errorf("V(4, 0xff) = %d, want 15", u)
	}
}

func TestWidthPanics(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("V(%d, 0) did not panic", w)
				}
			}()
			V(w, 0)
		}()
	}
}

func TestAllXAllZ(t *testing.T) {
	x := AllX(3)
	z := AllZ(3)
	for i := 0; i < 3; i++ {
		if x.Bit(i) != X {
			t.Errorf("AllX bit %d = %v", i, x.Bit(i))
		}
		if z.Bit(i) != Z {
			t.Errorf("AllZ bit %d = %v", i, z.Bit(i))
		}
	}
	if x.IsKnown() || z.IsKnown() {
		t.Error("AllX/AllZ must not be known")
	}
	if !z.HasZ() || x.HasZ() {
		t.Error("HasZ wrong")
	}
	if _, ok := x.Uint(); ok {
		t.Error("Uint on AllX must fail")
	}
}

func TestFromStateRoundTrip(t *testing.T) {
	for _, s := range []State{L, H, X, Z} {
		if got := FromState(s).State(); got != s {
			t.Errorf("FromState(%v).State() = %v", s, got)
		}
	}
}

func TestFromStatesRoundTrip(t *testing.T) {
	states := []State{H, L, X, Z, H, H}
	v := FromStates(states)
	for i, want := range states {
		if got := v.Bit(i); got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{V(1, 1), "1'b1"},
		{V(4, 0b1010), "4'b1010"},
		{V(8, 0xAB), "8'hab"},
		{FromStates([]State{X, Z, H, L}), "4'b01zx"},
		{AllX(2), "2'bxx"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// truth tables for the scalar view of gate operations.
func TestNotTruthTable(t *testing.T) {
	cases := map[State]State{L: H, H: L, X: X, Z: X}
	for in, want := range cases {
		if got := FromState(in).Not().State(); got != want {
			t.Errorf("Not(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestAndTruthTable(t *testing.T) {
	// Controlling value: 0 AND anything = 0.
	tab := map[[2]State]State{
		{L, L}: L, {L, H}: L, {L, X}: L, {L, Z}: L,
		{H, L}: L, {H, H}: H, {H, X}: X, {H, Z}: X,
		{X, L}: L, {X, H}: X, {X, X}: X, {X, Z}: X,
		{Z, L}: L, {Z, H}: X, {Z, X}: X, {Z, Z}: X,
	}
	for in, want := range tab {
		got := FromState(in[0]).And(FromState(in[1])).State()
		if got != want {
			t.Errorf("And(%v,%v) = %v, want %v", in[0], in[1], got, want)
		}
	}
}

func TestOrTruthTable(t *testing.T) {
	tab := map[[2]State]State{
		{L, L}: L, {L, H}: H, {L, X}: X, {L, Z}: X,
		{H, L}: H, {H, H}: H, {H, X}: H, {H, Z}: H,
		{X, L}: X, {X, H}: H, {X, X}: X, {X, Z}: X,
		{Z, L}: X, {Z, H}: H, {Z, X}: X, {Z, Z}: X,
	}
	for in, want := range tab {
		got := FromState(in[0]).Or(FromState(in[1])).State()
		if got != want {
			t.Errorf("Or(%v,%v) = %v, want %v", in[0], in[1], got, want)
		}
	}
}

func TestXorTruthTable(t *testing.T) {
	tab := map[[2]State]State{
		{L, L}: L, {L, H}: H, {H, L}: H, {H, H}: L,
		{L, X}: X, {X, H}: X, {Z, L}: X, {H, Z}: X, {X, Z}: X,
	}
	for in, want := range tab {
		got := FromState(in[0]).Xor(FromState(in[1])).State()
		if got != want {
			t.Errorf("Xor(%v,%v) = %v, want %v", in[0], in[1], got, want)
		}
	}
}

func TestDerivedGates(t *testing.T) {
	a, b := FromState(H), FromState(H)
	if a.Nand(b).State() != L {
		t.Error("Nand(1,1) != 0")
	}
	if a.Nor(b).State() != L {
		t.Error("Nor(1,1) != 0")
	}
	if a.Xnor(b).State() != H {
		t.Error("Xnor(1,1) != 1")
	}
}

func TestBitwiseOnBuses(t *testing.T) {
	a := V(8, 0b11001010)
	b := V(8, 0b10011001)
	if got := a.And(b).MustUint(); got != 0b10001000 {
		t.Errorf("And = %08b", got)
	}
	if got := a.Or(b).MustUint(); got != 0b11011011 {
		t.Errorf("Or = %08b", got)
	}
	if got := a.Xor(b).MustUint(); got != 0b01010011 {
		t.Errorf("Xor = %08b", got)
	}
	if got := a.Not().MustUint(); got != 0b00110101 {
		t.Errorf("Not = %08b", got)
	}
}

func TestArithmetic(t *testing.T) {
	a, b := V(8, 200), V(8, 100)
	if got := a.Add(b).MustUint(); got != 44 { // 300 mod 256
		t.Errorf("Add = %d, want 44", got)
	}
	if got := a.Sub(b).MustUint(); got != 100 {
		t.Errorf("Sub = %d, want 100", got)
	}
	if got := b.Sub(a).MustUint(); got != 156 { // -100 mod 256
		t.Errorf("Sub = %d, want 156", got)
	}
	if !a.Add(AllX(8)).Equal(AllX(8)) {
		t.Error("Add with X operand must poison")
	}
	if got := Mul(V(8, 20), V(8, 13), 16).MustUint(); got != 260 {
		t.Errorf("Mul = %d, want 260", got)
	}
	if !Mul(AllX(4), V(4, 3), 8).Equal(AllX(8)) {
		t.Error("Mul with X operand must poison")
	}
}

func TestAddCarry(t *testing.T) {
	sum, cout := V(4, 9).AddCarry(V(4, 8), V(1, 0))
	if sum.MustUint() != 1 || cout.MustUint() != 1 {
		t.Errorf("9+8 = %v carry %v", sum, cout)
	}
	sum, cout = V(4, 7).AddCarry(V(4, 7), V(1, 1))
	if sum.MustUint() != 15 || cout.MustUint() != 0 {
		t.Errorf("7+7+1 = %v carry %v", sum, cout)
	}
	sum, cout = V(64, ^uint64(0)).AddCarry(V(64, 0), V(1, 1))
	if sum.MustUint() != 0 || cout.MustUint() != 1 {
		t.Errorf("64-bit overflow: %v carry %v", sum, cout)
	}
	sum, cout = V(64, ^uint64(0)).AddCarry(V(64, 1), V(1, 0))
	if sum.MustUint() != 0 || cout.MustUint() != 1 {
		t.Errorf("64-bit overflow b: %v carry %v", sum, cout)
	}
	sum, _ = AllX(4).AddCarry(V(4, 1), V(1, 0))
	if !sum.Equal(AllX(4)) {
		t.Error("AddCarry with X must poison")
	}
}

func TestEq(t *testing.T) {
	if V(4, 5).Eq(V(4, 5)).State() != H {
		t.Error("5 == 5 must be 1")
	}
	if V(4, 5).Eq(V(4, 6)).State() != L {
		t.Error("5 == 6 must be 0")
	}
	// Known disagreement dominates X.
	a := FromStates([]State{L, X, X, X})
	b := FromStates([]State{H, X, X, X})
	if a.Eq(b).State() != L {
		t.Error("provably different values must compare 0")
	}
	c := FromStates([]State{L, X, L, L})
	d := FromStates([]State{L, H, L, L})
	if c.Eq(d).State() != X {
		t.Error("possibly equal values must compare X")
	}
}

func TestMux(t *testing.T) {
	a, b := V(4, 0b0011), V(4, 0b0101)
	if got := Mux(V(1, 0), a, b); !got.Equal(a) {
		t.Errorf("Mux(0) = %v", got)
	}
	if got := Mux(V(1, 1), a, b); !got.Equal(b) {
		t.Errorf("Mux(1) = %v", got)
	}
	got := Mux(AllX(1), a, b)
	// Bits where a and b agree (bit 0 = 1) stay; others X.
	if got.Bit(0) != H {
		t.Errorf("Mux(x) bit0 = %v, want 1", got.Bit(0))
	}
	if got.Bit(1) != X || got.Bit(2) != X {
		t.Error("Mux(x) disagreeing bits must be X")
	}
	if got.Bit(3) != L {
		t.Errorf("Mux(x) bit3 = %v, want 0", got.Bit(3))
	}
}

func TestResolve(t *testing.T) {
	cases := []struct {
		a, b, want State
	}{
		{Z, Z, Z}, {Z, L, L}, {Z, H, H}, {Z, X, X},
		{L, Z, L}, {L, L, L}, {L, H, X}, {H, H, H}, {X, H, X},
	}
	for _, c := range cases {
		got := Resolve(FromState(c.a), FromState(c.b)).State()
		if got != c.want {
			t.Errorf("Resolve(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSliceConcat(t *testing.T) {
	v := V(8, 0xA5)
	lo := v.Slice(0, 4)
	hi := v.Slice(4, 4)
	if lo.MustUint() != 0x5 || hi.MustUint() != 0xA {
		t.Fatalf("slices = %v %v", lo, hi)
	}
	if got := lo.Concat(hi); !got.Equal(v) {
		t.Errorf("Concat = %v, want %v", got, v)
	}
	z := FromStates([]State{Z, H, X, L})
	if got := z.Slice(1, 2); got.Bit(0) != H || got.Bit(1) != X {
		t.Errorf("slice of mixed states = %v", got)
	}
}

func TestExtend(t *testing.T) {
	v := V(4, 0b1011)
	if got := v.Extend(8); got.MustUint() != 0b1011 || got.Width() != 8 {
		t.Errorf("Extend(8) = %v", got)
	}
	if got := v.Extend(2); got.MustUint() != 0b11 {
		t.Errorf("Extend(2) = %v", got)
	}
	x := AllX(4)
	if got := x.Extend(8); got.Bit(3) != X || got.Bit(4) != L {
		t.Errorf("Extend of X = %v", got)
	}
}

func TestReductions(t *testing.T) {
	if V(4, 0xF).ReduceAnd().State() != H {
		t.Error("ReduceAnd(1111) != 1")
	}
	if V(4, 0xE).ReduceAnd().State() != L {
		t.Error("ReduceAnd(1110) != 0")
	}
	if FromStates([]State{H, H, X, H}).ReduceAnd().State() != X {
		t.Error("ReduceAnd(11x1) != x")
	}
	if FromStates([]State{L, L, X, L}).ReduceAnd().State() != L {
		t.Error("ReduceAnd with known 0 must be 0")
	}
	if V(4, 0).ReduceOr().State() != L {
		t.Error("ReduceOr(0000) != 0")
	}
	if FromStates([]State{L, X, L, H}).ReduceOr().State() != H {
		t.Error("ReduceOr with known 1 must be 1")
	}
	if FromStates([]State{L, X, L, L}).ReduceOr().State() != X {
		t.Error("ReduceOr(00x0) != x")
	}
	if V(4, 0b0111).ReduceXor().State() != H {
		t.Error("ReduceXor(0111) != 1")
	}
	if V(4, 0b0110).ReduceXor().State() != L {
		t.Error("ReduceXor(0110) != 0")
	}
	if FromStates([]State{H, X, L, L}).ReduceXor().State() != X {
		t.Error("ReduceXor with X must be X")
	}
}

func TestShifts(t *testing.T) {
	v := V(8, 0b00001111)
	if got := v.ShiftLeft(2).MustUint(); got != 0b00111100 {
		t.Errorf("ShiftLeft = %08b", got)
	}
	if got := v.ShiftRight(2).MustUint(); got != 0b00000011 {
		t.Errorf("ShiftRight = %08b", got)
	}
	if got := v.ShiftLeft(8).MustUint(); got != 0 {
		t.Errorf("ShiftLeft(width) = %d", got)
	}
	if got := v.ShiftRight(100).MustUint(); got != 0 {
		t.Errorf("ShiftRight(100) = %d", got)
	}
	x := AllX(4).ShiftLeft(1)
	if x.Bit(0) != L || x.Bit(1) != X {
		t.Errorf("shifted X = %v", x)
	}
}

func TestMismatchedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And on mismatched widths did not panic")
		}
	}()
	V(4, 0).And(V(5, 0))
}

// randomValue generates an arbitrary Value of the given width for property
// tests.
func randomValue(r *rand.Rand, width int) Value {
	states := make([]State, width)
	for i := range states {
		states[i] = State(r.Intn(4))
	}
	return FromStates(states)
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(MaxWidth)
		a, b := randomValue(r, w), randomValue(r, w)
		// NOT(a AND b) == NOT(a) OR NOT(b)
		return a.Nand(b).Equal(a.Not().Or(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDoubleNegation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(MaxWidth)
		a := randomValue(r, w)
		// Not is an involution on {0,1,X} but maps Z to X; apply readable
		// first so the domain is closed.
		ra := a.Not().Not()
		return ra.Equal(a.Not().Not().Not().Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAndOrAbsorption(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(MaxWidth)
		a, b := randomValue(r, w), randomValue(r, w)
		// Commutativity of And / Or / Xor.
		return a.And(b).Equal(b.And(a)) &&
			a.Or(b).Equal(b.Or(a)) &&
			a.Xor(b).Equal(b.Xor(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddMatchesUint(t *testing.T) {
	f := func(x, y uint64, wRaw uint8) bool {
		w := int(wRaw%MaxWidth) + 1
		a, b := V(w, x), V(w, y)
		want := (x&mask(uint8(w)) + y&mask(uint8(w))) & mask(uint8(w))
		return a.Add(b).MustUint() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSliceConcatRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(MaxWidth-1)
		v := randomValue(r, w)
		cut := 1 + r.Intn(w-1)
		return v.Slice(0, cut).Concat(v.Slice(cut, w-cut)).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickResolveCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(MaxWidth)
		a, b := randomValue(r, w), randomValue(r, w)
		return Resolve(a, b).Equal(Resolve(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickResolveZIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(MaxWidth)
		a := randomValue(r, w)
		return Resolve(a, AllZ(w)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
