package logic

import (
	"fmt"
	"testing"
	"testing/quick"
)

var allStates = []State{L, H, X, Z}

// packStates builds a Plane holding states[i] in lane i and repeats the
// pattern across all 64 lanes, so every test also proves lane independence:
// a correct op must produce the same per-lane result wherever the lane sits.
func packStates(states []State) Plane {
	var p Plane
	for i := 0; i < MaxLanes; i++ {
		p.SetLane(i, states[i%len(states)])
	}
	return p
}

// TestPlaneUnaryOpsExhaustive proves PlaneNot and Readable against the
// scalar ops for all four input states in every lane position.
func TestPlaneUnaryOpsExhaustive(t *testing.T) {
	in := packStates(allStates)
	got := PlaneNot(in)
	for lane := 0; lane < MaxLanes; lane++ {
		s := in.Lane(lane)
		want := FromState(s).Not().State()
		if g := got.Lane(lane); g != want {
			t.Errorf("PlaneNot lane %d: Not(%v) = %v, want %v", lane, s, g, want)
		}
		wantR := FromState(s).readable().State()
		if g := in.Readable().Lane(lane); g != wantR {
			t.Errorf("Readable lane %d: readable(%v) = %v, want %v", lane, s, g, wantR)
		}
	}
}

// TestPlaneBinaryOpsExhaustive proves every binary plane op against its
// scalar counterpart for all 16 four-state input pairs, in every lane.
func TestPlaneBinaryOpsExhaustive(t *testing.T) {
	ops := []struct {
		name   string
		plane  func(a, b Plane) Plane
		scalar func(a, b Value) Value
	}{
		{"And", PlaneAnd, Value.And},
		{"Or", PlaneOr, Value.Or},
		{"Xor", PlaneXor, Value.Xor},
		{"Nand", func(a, b Plane) Plane { return PlaneNot(PlaneAnd(a, b)) }, Value.Nand},
		{"Nor", func(a, b Plane) Plane { return PlaneNot(PlaneOr(a, b)) }, Value.Nor},
		{"Xnor", func(a, b Plane) Plane { return PlaneNot(PlaneXor(a, b)) }, Value.Xnor},
		{"Resolve", PlaneResolve, Resolve},
	}
	// All 16 (a,b) state pairs spread over 16 lanes, repeated 4x across the
	// word so each combination is checked in four different lane positions.
	var as, bs []State
	for _, a := range allStates {
		for _, b := range allStates {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	pa, pb := packStates(as), packStates(bs)
	for _, op := range ops {
		got := op.plane(pa, pb)
		for lane := 0; lane < MaxLanes; lane++ {
			sa, sb := pa.Lane(lane), pb.Lane(lane)
			want := op.scalar(FromState(sa), FromState(sb)).State()
			if g := got.Lane(lane); g != want {
				t.Errorf("%s lane %d: (%v,%v) = %v, want %v", op.name, lane, sa, sb, g, want)
			}
		}
	}
}

// TestPlaneMuxExhaustive proves PlaneMux against logic.Mux for all 64
// (sel,a,b) four-state combinations — one combination per lane fills the
// word exactly.
func TestPlaneMuxExhaustive(t *testing.T) {
	var sels, as, bs []State
	for _, sel := range allStates {
		for _, a := range allStates {
			for _, b := range allStates {
				sels = append(sels, sel)
				as = append(as, a)
				bs = append(bs, b)
			}
		}
	}
	ps, pa, pb := packStates(sels), packStates(as), packStates(bs)
	got := PlaneMux(ps, pa, pb)
	for lane := 0; lane < MaxLanes; lane++ {
		sel, a, b := ps.Lane(lane), pa.Lane(lane), pb.Lane(lane)
		want := Mux(FromState(sel), FromState(a), FromState(b)).State()
		if g := got.Lane(lane); g != want {
			t.Errorf("Mux lane %d: (sel=%v,a=%v,b=%v) = %v, want %v", lane, sel, a, b, g, want)
		}
	}
}

// TestPlaneOpsCanonical proves op results are canonical (no lane with V set
// under U except the never-produced Z), so planes compare with ==.
func TestPlaneOpsCanonical(t *testing.T) {
	var as, bs []State
	for _, a := range allStates {
		for _, b := range allStates {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	pa, pb := packStates(as), packStates(bs)
	check := func(name string, p Plane) {
		t.Helper()
		if z := p.ZMask(); z != 0 && name != "Resolve" {
			t.Errorf("%s produced Z lanes %#x; gate ops must read Z as X", name, z)
		}
	}
	check("And", PlaneAnd(pa, pb))
	check("Or", PlaneOr(pa, pb))
	check("Xor", PlaneXor(pa, pb))
	check("Not", PlaneNot(pa))
	check("Mux", PlaneMux(pa, pa, pb))
}

func TestPlaneBroadcastAndMasks(t *testing.T) {
	for _, s := range allStates {
		p := PlaneBroadcast(s)
		for lane := 0; lane < MaxLanes; lane++ {
			if g := p.Lane(lane); g != s {
				t.Fatalf("PlaneBroadcast(%v).Lane(%d) = %v", s, lane, g)
			}
		}
		all := ^uint64(0)
		wantH := map[State]uint64{H: all}[s]
		wantL := map[State]uint64{L: all}[s]
		wantX := map[State]uint64{X: all}[s]
		wantZ := map[State]uint64{Z: all}[s]
		if p.HMask() != wantH || p.LMask() != wantL || p.XMask() != wantX || p.ZMask() != wantZ {
			t.Errorf("masks for %v: H=%#x L=%#x X=%#x Z=%#x", s, p.HMask(), p.LMask(), p.XMask(), p.ZMask())
		}
		if known := p.KnownMask(); (known == all) != (s == L || s == H) {
			t.Errorf("KnownMask for %v = %#x", s, known)
		}
	}
}

func TestPlaneSelect(t *testing.T) {
	a, b := PlaneBroadcast(H), PlaneBroadcast(Z)
	const mask = uint64(0xaaaa_aaaa_aaaa_aaaa)
	got := PlaneSelect(mask, a, b)
	for lane := 0; lane < MaxLanes; lane++ {
		want := Z
		if mask>>uint(lane)&1 != 0 {
			want = H
		}
		if g := got.Lane(lane); g != want {
			t.Fatalf("PlaneSelect lane %d = %v, want %v", lane, g, want)
		}
	}
}

// fourStateValue derives an arbitrary four-state Value of the given width from
// two source words (quick-check friendly).
func fourStateValue(width int, a, b uint64) Value {
	states := make([]State, width)
	for i := range states {
		states[i] = allStates[(a>>uint(2*i%64)^b>>uint((2*i+17)%64))&3]
	}
	return FromStates(states)
}

// TestPackExtractRoundTrip quick-checks that PackLane followed by
// ExtractLane returns the original value for every lane and width, with
// neighbouring lanes left untouched.
func TestPackExtractRoundTrip(t *testing.T) {
	f := func(a, b uint64, widthSeed, laneSeed uint8) bool {
		width := int(widthSeed)%MaxWidth + 1
		lane := int(laneSeed) % MaxLanes
		other := (lane + 13) % MaxLanes
		v := fourStateValue(width, a, b)
		neighbour := fourStateValue(width, b, ^a)

		planes := make([]Plane, width)
		PackLane(planes, other, neighbour)
		PackLane(planes, lane, v)
		return ExtractLane(planes, lane, width) == v &&
			ExtractLane(planes, other, width) == neighbour
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcastValue checks BroadcastValue against per-lane extraction.
func TestBroadcastValue(t *testing.T) {
	for _, v := range []Value{
		V(1, 1), AllX(3), AllZ(8),
		FromStates([]State{L, H, X, Z, H, L, Z, X}),
		V(64, 0xdeadbeefcafef00d),
	} {
		planes := make([]Plane, v.Width())
		BroadcastValue(planes, v)
		for lane := 0; lane < MaxLanes; lane++ {
			if got := ExtractLane(planes, lane, v.Width()); got != v {
				t.Fatalf("BroadcastValue(%v) lane %d = %v", v, lane, got)
			}
		}
	}
}

// TestSetLaneLane round-trips every state through every lane.
func TestSetLaneLane(t *testing.T) {
	for lane := 0; lane < MaxLanes; lane++ {
		for _, s := range allStates {
			p := PlaneBroadcast(allStates[(lane+1)%4])
			p.SetLane(lane, s)
			if got := p.Lane(lane); got != s {
				t.Fatalf("lane %d: set %v, got %v", lane, s, got)
			}
		}
	}
}

func ExamplePlane() {
	// Lane 0 carries L AND H, lane 1 carries X AND H.
	var a, b Plane
	a.SetLane(0, L)
	b.SetLane(0, H)
	a.SetLane(1, X)
	b.SetLane(1, H)
	y := PlaneAnd(a, b)
	fmt.Println(y.Lane(0), y.Lane(1))
	// Output: 0 x
}
