package logic

import "fmt"

// Plane is one bit position of a bus across up to 64 independent stimulus
// lanes — the transposed, bit-parallel representation the batched vector
// engine simulates with. Where a scalar Value stores one stimulus vector's
// 64 bit positions in three planes indexed by bit, a Plane stores 64
// stimulus vectors' copies of a single bit position in two planes indexed
// by lane. Lane i's state is the bit pair (V>>i&1, U>>i&1):
//
//	(0,0) = L   (1,0) = H   (0,1) = X   (1,1) = Z
//
// Two machine words therefore carry one bit of 64 full four-state lanes,
// and the plane operations below evaluate a gate for all 64 lanes in a
// handful of word instructions. Each operation mirrors the corresponding
// scalar Value operation exactly, lane for lane; plane_test.go proves the
// equivalence exhaustively over every 4-state input combination.
//
// Operations never produce Z and keep V clear where U is set (the same
// canonical discipline Value keeps between its bits and unk planes), so
// planes holding op results are comparable with ==. Planes holding packed
// input values may carry Z lanes (V and U both set).
type Plane struct {
	V uint64 // value plane: lane is 1/H (or the Z marker with U)
	U uint64 // undefined plane: lane is X (or Z when V is also set)
}

// MaxLanes is the number of stimulus lanes a Plane word pair carries.
const MaxLanes = 64

// PlaneBroadcast returns a Plane holding s in every lane.
func PlaneBroadcast(s State) Plane {
	switch s {
	case L:
		return Plane{}
	case H:
		return Plane{V: ^uint64(0)}
	case X:
		return Plane{U: ^uint64(0)}
	case Z:
		return Plane{V: ^uint64(0), U: ^uint64(0)}
	}
	panic("logic: invalid state " + s.String())
}

// Lane returns the state held in lane i.
func (p Plane) Lane(i int) State {
	bit := uint64(1) << uint(i)
	switch {
	case p.V&bit != 0 && p.U&bit != 0:
		return Z
	case p.U&bit != 0:
		return X
	case p.V&bit != 0:
		return H
	default:
		return L
	}
}

// SetLane stores s into lane i.
func (p *Plane) SetLane(i int, s State) {
	bit := uint64(1) << uint(i)
	p.V &^= bit
	p.U &^= bit
	switch s {
	case H:
		p.V |= bit
	case X:
		p.U |= bit
	case Z:
		p.V |= bit
		p.U |= bit
	case L:
	default:
		panic("logic: invalid state " + s.String())
	}
}

// Readable converts Z lanes to X, the plane form of Value.readable: a gate
// that samples a floating wire reads an unknown. The result is canonical
// (V clear wherever U is set).
func (p Plane) Readable() Plane {
	return Plane{V: p.V &^ p.U, U: p.U}
}

// Lane-mask accessors. HMask/LMask treat only strong levels as matches, so
// X and Z lanes appear in neither; KnownMask is their union.
func (p Plane) HMask() uint64     { return p.V &^ p.U }
func (p Plane) LMask() uint64     { return ^(p.V | p.U) }
func (p Plane) KnownMask() uint64 { return ^p.U }
func (p Plane) XMask() uint64     { return p.U &^ p.V }
func (p Plane) ZMask() uint64     { return p.V & p.U }

// PlaneSelect returns a in the lanes where mask is set and b elsewhere —
// the lane-wise conditional the sequential-element kernels are built from.
func PlaneSelect(mask uint64, a, b Plane) Plane {
	return Plane{V: a.V&mask | b.V&^mask, U: a.U&mask | b.U&^mask}
}

// PlaneNot mirrors Value.Not: complement per lane, X and Z lanes yield X.
func PlaneNot(a Plane) Plane {
	r := a.Readable()
	return Plane{V: ^(r.V | r.U), U: r.U}
}

// PlaneAnd mirrors Value.And: a lane is L when either input lane is a known
// L (the controlling value), H when both are known H, X otherwise.
func PlaneAnd(a, b Plane) Plane {
	ra, rb := a.Readable(), b.Readable()
	one := ra.V & rb.V
	zero := ^(ra.V | ra.U) | ^(rb.V | rb.U)
	return Plane{V: one, U: ^(one | zero)}
}

// PlaneOr mirrors Value.Or: H is the controlling value.
func PlaneOr(a, b Plane) Plane {
	ra, rb := a.Readable(), b.Readable()
	one := ra.V | rb.V
	zero := ^(ra.V | ra.U) & ^(rb.V | rb.U)
	return Plane{V: one, U: ^(one | zero)}
}

// PlaneXor mirrors Value.Xor: any X or Z input lane yields X.
func PlaneXor(a, b Plane) Plane {
	ra, rb := a.Readable(), b.Readable()
	u := ra.U | rb.U
	return Plane{V: (ra.V ^ rb.V) &^ u, U: u}
}

// PlaneMux mirrors logic.Mux: per lane, a when sel is L, b when sel is H;
// when sel is X or Z the lane keeps the value a and b agree on (known and
// equal) and is X otherwise.
func PlaneMux(sel, a, b Plane) Plane {
	rs, ra, rb := sel.Readable(), a.Readable(), b.Readable()
	selL := ^(rs.V | rs.U)
	selH := rs.V
	agree := ^(ra.V ^ rb.V) &^ (ra.U | rb.U)
	return Plane{
		V: ra.V&selL | rb.V&selH | ra.V&agree&rs.U,
		U: ra.U&selL | rb.U&selH | ^agree&rs.U,
	}
}

// PlaneResolve mirrors logic.Resolve, the wired-bus resolution function:
// per lane, Z yields to the other driver, agreement on a strong level keeps
// it, conflict or X produces X.
func PlaneResolve(a, b Plane) Plane {
	za := a.V & a.U
	zb := (b.V & b.U) &^ za
	neither := ^(za | zb | b.V&b.U)
	eq := ^(a.V ^ b.V) & ^(a.U ^ b.U)
	keep := eq &^ a.U // known and equal
	return Plane{
		V: za&b.V | zb&a.V | neither&keep&a.V,
		U: za&b.U | zb&a.U | neither&^keep,
	}
}

// ---- packed-bus helpers ----
//
// A batched bus of width w is a []Plane of length w, planes[i] holding bit
// i of every lane. These helpers move scalar Values in and out of that
// transposed layout.

// PackLane writes v into lane of the bus planes[0:v.Width()].
func PackLane(planes []Plane, lane int, v Value) {
	if len(planes) < int(v.width) {
		panic(fmt.Sprintf("logic: PackLane %d-bit value into %d planes", v.width, len(planes)))
	}
	bit := uint64(1) << uint(lane)
	for i := 0; i < int(v.width); i++ {
		p := planes[i]
		p.V &^= bit
		p.U &^= bit
		pos := uint64(1) << uint(i)
		if v.hiz&pos != 0 {
			p.V |= bit
			p.U |= bit
		} else if v.unk&pos != 0 {
			p.U |= bit
		} else if v.bits&pos != 0 {
			p.V |= bit
		}
		planes[i] = p
	}
}

// ExtractLane reads lane of the width-bit bus planes[0:width] as a Value.
func ExtractLane(planes []Plane, lane, width int) Value {
	w := checkWidth(width)
	bit := uint64(1) << uint(lane)
	var v Value
	v.width = w
	for i := 0; i < width; i++ {
		p := planes[i]
		pos := uint64(1) << uint(i)
		switch {
		case p.V&bit != 0 && p.U&bit != 0:
			v.hiz |= pos
		case p.U&bit != 0:
			v.unk |= pos
		case p.V&bit != 0:
			v.bits |= pos
		}
	}
	return v
}

// BroadcastValue fills dst[0:v.Width()] with v replicated into every lane.
func BroadcastValue(dst []Plane, v Value) {
	if len(dst) < int(v.width) {
		panic(fmt.Sprintf("logic: BroadcastValue %d-bit value into %d planes", v.width, len(dst)))
	}
	all := ^uint64(0)
	for i := 0; i < int(v.width); i++ {
		pos := uint64(1) << uint(i)
		var p Plane
		switch {
		case v.hiz&pos != 0:
			p = Plane{V: all, U: all}
		case v.unk&pos != 0:
			p = Plane{U: all}
		case v.bits&pos != 0:
			p = Plane{V: all}
		}
		dst[i] = p
	}
}
