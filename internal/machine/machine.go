// Package machine models a P-processor shared-memory machine executing
// each of the three parallel algorithms, in deterministic abstract cost
// units. The host running this reproduction has however many cores it has;
// the paper's Encore Multimax had sixteen. These models regenerate the
// paper's 1-16 processor speed-up and utilisation curves on any host:
//
//   - the synchronous event-driven algorithm is constrained by the per-step
//     structure of the computation (events available per step) plus barrier
//     and queue costs — modelled from a sequential run's StepRecords;
//   - compiled mode is constrained by the static partition's load balance;
//   - the asynchronous algorithm is constrained only by true event
//     causality — modelled by greedy list-scheduling of the evaluation DAG
//     with element affinity, so consecutive evaluations of one element
//     batch and pay the dispatch overhead once, exactly like the real
//     algorithm consuming several queued events per activation.
//
// Two machine-level effects are modelled as work dilation: a shared-bus
// contention term that grows with the processor count, and the Encore's
// pairs-share-a-cache topology above eight processors, which the paper
// blames for the dip in every figure.
package machine

import (
	"container/heap"

	"parsim/internal/circuit"
	"parsim/internal/partition"
	"parsim/internal/seq"
)

// CostModel holds the abstract cost parameters, in units of one inverter
// evaluation (the paper's yardstick: functional elements cost 1-100
// inverter-events).
type CostModel struct {
	EvalOverhead float64 // scheduling + dispatch cost per evaluation
	UpdateCost   float64 // applying one node update
	ScheduleCost float64 // enqueueing one future event or activation
	BarrierBase  float64 // fixed barrier latency
	BarrierPerP  float64 // additional barrier latency per processor
	LockCost     float64 // serialised critical section per central-queue op
	// BusContention dilates all work by this fraction per additional
	// processor, modelling shared-memory bandwidth.
	BusContention float64
	// CachePairPenalty models the Encore topology: with more than
	// CacheCards processors, processors are paired onto shared caches and
	// parallel work slows accordingly. Zero disables it.
	CachePairPenalty float64
	CacheCards       int
}

// DefaultCostModel returns parameters calibrated so the three algorithms
// land in the paper's reported ranges on the paper's circuits.
func DefaultCostModel() CostModel {
	return CostModel{
		EvalOverhead:     3,
		UpdateCost:       1,
		ScheduleCost:     1,
		BarrierBase:      8,
		BarrierPerP:      2,
		LockCost:         1.5,
		BusContention:    0.012,
		CachePairPenalty: 0.18,
		CacheCards:       8,
	}
}

// Makespan is the outcome of one model run.
type Makespan struct {
	Span float64   // total virtual time
	Busy []float64 // useful work per processor
}

// Utilization returns total useful work over span x processors.
func (m Makespan) Utilization() float64 {
	if m.Span <= 0 || len(m.Busy) == 0 {
		return 0
	}
	var busy float64
	for _, b := range m.Busy {
		busy += b
	}
	return busy / (m.Span * float64(len(m.Busy)))
}

// Speedup returns base.Span / m.Span.
func (m Makespan) Speedup(base Makespan) float64 {
	if m.Span == 0 {
		return 0
	}
	return base.Span / m.Span
}

// dilation returns the work multiplier for p processors: bus contention
// plus cache-card pairing.
func (cm *CostModel) dilation(p int) float64 {
	d := 1 + cm.BusContention*float64(p-1)
	if cm.CachePairPenalty > 0 && cm.CacheCards > 0 && p > cm.CacheCards {
		paired := p - cm.CacheCards
		if paired > cm.CacheCards {
			paired = cm.CacheCards
		}
		d *= 1 + cm.CachePairPenalty*float64(2*paired)/float64(p)
	}
	return d
}

// EDMode selects the event-driven work-distribution variant being modelled.
type EDMode int

// Event-driven model variants, matching parevent's modes.
const (
	EDDistributed EDMode = iota
	EDNoSteal
	EDCentral
)

// EventDriven models the synchronous parallel event-driven algorithm over
// the per-step records of a sequential run.
func EventDriven(c *circuit.Circuit, steps []seq.StepRecord, p int, mode EDMode, cm CostModel) Makespan {
	busy := make([]float64, p)
	var span float64
	dilate := cm.dilation(p)
	loads := make([]float64, p)
	for si := range steps {
		st := &steps[si]
		// Update phase: updates are distributed round-robin at schedule
		// time, so they balance to within one task.
		updWork := float64(st.Updates) * cm.UpdateCost
		updTime := updWork / float64(p)
		if mode == EDCentral {
			// Every dequeue serialises on the global queue.
			if serial := float64(st.Updates) * cm.LockCost; serial > updTime {
				updTime = serial
			}
		}

		// Evaluation phase.
		var totalEval, maxTask float64
		for i := range loads {
			loads[i] = 0
		}
		for i, e := range st.Evals {
			cost := cm.EvalOverhead + float64(c.Elems[e].Cost) + cm.ScheduleCost
			totalEval += cost
			if cost > maxTask {
				maxTask = cost
			}
			loads[i%p] += cost
		}
		var evalTime float64
		switch mode {
		case EDDistributed:
			// Stealing rebalances to the greedy optimum.
			evalTime = maxF(totalEval/float64(p), maxTask)
		case EDNoSteal:
			evalTime = maxFSlice(loads)
		case EDCentral:
			evalTime = maxF(totalEval/float64(p),
				maxF(float64(len(st.Evals))*cm.LockCost, maxTask))
		}

		work := (updTime + evalTime) * dilate
		barrier := 0.0
		if p > 1 {
			barrier = 2 * (cm.BarrierBase + cm.BarrierPerP*float64(p))
		}
		span += work + barrier
		useful := (updWork + totalEval) / float64(p)
		for w := 0; w < p; w++ {
			busy[w] += useful
		}
	}
	return Makespan{Span: span, Busy: busy}
}

// Compiled models the compiled-mode simulator: every element evaluated
// every step from a static partition, one barrier per step.
func Compiled(c *circuit.Circuit, steps int64, p int, strat partition.Strategy, cm CostModel) Makespan {
	parts := partition.Split(c, p, strat)
	loads := make([]float64, p)
	for w, part := range parts {
		for _, e := range part {
			loads[w] += float64(c.Elems[e].Cost) + 1 // +1: dispatch is a table walk, not a queue
		}
	}
	maxLoad := maxFSlice(loads)
	dilate := cm.dilation(p)
	barrier := 0.0
	if p > 1 {
		barrier = cm.BarrierBase + cm.BarrierPerP*float64(p)
	}
	stepTime := maxLoad*dilate + barrier
	busy := make([]float64, p)
	for w := range busy {
		busy[w] = loads[w] * float64(steps)
	}
	return Makespan{Span: stepTime * float64(steps), Busy: busy}
}

// Async models the asynchronous algorithm by list-scheduling the
// evaluation-causality DAG: a task is ready as soon as the evaluations that
// produced its input events have finished — no barriers, no time steps.
// Each element's evaluations are chained (its cursors and internal state
// serialise them). The scheduler mirrors the real algorithm's behaviour:
//
//   - a processor first continues with the element it is already holding,
//     paying no dispatch overhead — this is event batching, one activation
//     consuming every queued event;
//   - otherwise it takes the earliest-ready task, unless that task's own
//     element is still bound to another processor that would finish it
//     sooner by batching (earliest-finish-time placement).
func Async(c *circuit.Circuit, g *seq.TaskGraph, p int, cm CostModel) Makespan {
	n := g.NumTasks()
	busy := make([]float64, p)
	if n == 0 {
		return Makespan{Span: 0, Busy: busy}
	}
	dilate := cm.dilation(p)

	// Dependency counts and child lists; same-element chain edges added.
	ndep := make([]int32, n)
	children := make([][]int32, n)
	for i, deps := range g.Deps {
		ndep[i] = int32(len(deps))
		for _, d := range deps {
			children[d] = append(children[d], int32(i))
		}
	}
	lastOfElem := make(map[circuit.ElemID]int32, 256)
	for i := 0; i < n; i++ {
		if prev, ok := lastOfElem[g.Elems[i]]; ok {
			ndep[i]++
			children[prev] = append(children[prev], int32(i))
		}
		lastOfElem[g.Elems[i]] = int32(i)
	}

	ready := &taskHeap{}
	readyAt := make([]float64, n)
	done := make([]bool, n)
	// Thanks to the chain edges at most one task per element is ready at
	// any moment, so a processor can find its continuation in O(1).
	elemReady := make(map[circuit.ElemID]int32, 256)
	release := func(id int32) {
		heap.Push(ready, taskAt{at: readyAt[id], id: id})
		elemReady[g.Elems[id]] = id
	}
	for i := 0; i < n; i++ {
		if ndep[i] == 0 {
			release(int32(i))
		}
	}

	// Processor state: freeAt is authoritative; the heap holds possibly
	// stale (at, id) entries that are discarded when they disagree.
	freeAt := make([]float64, p)
	lastElem := make([]int32, p)
	for i := range lastElem {
		lastElem[i] = -1
	}
	elemProc := make(map[circuit.ElemID]int, 256)
	procs := &taskHeap{}
	for w := 0; w < p; w++ {
		heap.Push(procs, taskAt{at: 0, id: int32(w)})
	}

	var span float64
	scheduled := 0
	assign := func(task int32, q int, start, cost float64) {
		e := g.Elems[task]
		done[task] = true
		delete(elemReady, e)
		fin := start + cost
		freeAt[q] = fin
		lastElem[q] = int32(e)
		elemProc[e] = q
		busy[q] += cost
		if fin > span {
			span = fin
		}
		for _, ch := range children[task] {
			if readyAt[ch] < fin {
				readyAt[ch] = fin
			}
			ndep[ch]--
			if ndep[ch] == 0 {
				release(ch)
			}
		}
		heap.Push(procs, taskAt{at: fin, id: int32(q)})
		scheduled++
	}

	for scheduled < n {
		pe := heap.Pop(procs).(taskAt)
		q := int(pe.id)
		if pe.at != freeAt[q] {
			continue // stale entry
		}
		now := pe.at

		// 1. Continue the element this processor holds: batching.
		if le := lastElem[q]; le >= 0 {
			if id, ok := elemReady[circuit.ElemID(le)]; ok && readyAt[id] <= now {
				cost := (float64(c.Elems[le].Cost) + cm.ScheduleCost) * dilate
				assign(id, q, now, cost)
				continue
			}
		}

		// 2. Earliest-ready task.
		for ready.Len() > 0 && done[(*ready)[0].id] {
			heap.Pop(ready)
		}
		if ready.Len() == 0 {
			// Blocked on tasks running elsewhere: idle to the next event.
			next := now + 1
			for procs.Len() > 0 {
				cand := (*procs)[0]
				if cand.at != freeAt[cand.id] {
					heap.Pop(procs)
					continue
				}
				if cand.at > now {
					next = cand.at
				}
				break
			}
			freeAt[q] = next
			heap.Push(procs, taskAt{at: next, id: int32(q)})
			continue
		}
		top := (*ready)[0]
		if top.at > now {
			freeAt[q] = top.at
			heap.Push(procs, taskAt{at: top.at, id: int32(q)})
			continue
		}
		heap.Pop(ready)
		e := g.Elems[top.id]
		batch := (float64(c.Elems[e].Cost) + cm.ScheduleCost) * dilate
		cold := batch + cm.EvalOverhead*dilate

		// Earliest-finish-time: leave the task with its bound processor if
		// batching there beats running cold here.
		if owner, ok := elemProc[e]; ok && lastElem[owner] == int32(e) && owner != q {
			finOwner := maxF(freeAt[owner], top.at) + batch
			if finOwner <= now+cold {
				assign(top.id, owner, maxF(freeAt[owner], top.at), batch)
				// This processor is still free; try again.
				heap.Push(procs, taskAt{at: freeAt[q], id: int32(q)})
				continue
			}
		}
		assign(top.id, q, now, cold)
	}
	return Makespan{Span: span, Busy: busy}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxFSlice(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// taskAt orders ready tasks by ready time then id (FIFO-ish, deterministic).
type taskAt struct {
	at float64
	id int32
}

type taskHeap []taskAt

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(taskAt)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
