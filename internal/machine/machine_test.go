package machine

import (
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/partition"
	"parsim/internal/seq"
)

// collect runs the sequential simulator with collection enabled.
func collect(t *testing.T, c *circuit.Circuit, horizon circuit.Time) *seq.Result {
	t.Helper()
	res := seq.Run(c, seq.Options{Horizon: horizon, Collect: true})
	if res.Graph == nil || len(res.Steps) == 0 {
		t.Fatal("collection produced nothing")
	}
	return res
}

func TestEventDrivenSpeedupGrowsAndSaturates(t *testing.T) {
	cm := DefaultCostModel()
	cm.CachePairPenalty = 0 // isolate the algorithmic effect
	cm.BusContention = 0
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 16, Cols: 16, ActiveRows: 16, TogglePeriod: 1})
	res := collect(t, c, 200)
	base := EventDriven(c, res.Steps, 1, EDDistributed, cm)
	prev := 0.0
	var s8, s16 float64
	for _, p := range []int{2, 4, 8, 16} {
		sp := EventDriven(c, res.Steps, p, EDDistributed, cm).Speedup(base)
		if sp < prev*0.95 {
			t.Errorf("speedup dropped at P=%d: %.2f after %.2f", p, sp, prev)
		}
		prev = sp
		if p == 8 {
			s8 = sp
		}
		if p == 16 {
			s16 = sp
		}
	}
	if s8 < 3 {
		t.Errorf("P=8 speedup %.2f too low for 256 events/tick", s8)
	}
	// Saturation: doubling 8 -> 16 must not double the speedup.
	if s16 > 1.9*s8 {
		t.Errorf("no saturation: s8=%.2f s16=%.2f", s8, s16)
	}
}

func TestEventDrivenEventStarvation(t *testing.T) {
	// Fig. 2's point: fewer events per tick -> worse speed-up at high P.
	cm := DefaultCostModel()
	cfgBig := gen.InverterArrayConfig{Rows: 32, Cols: 16, ActiveRows: 32, TogglePeriod: 1}
	cfgSmall := cfgBig
	cfgSmall.ActiveRows = 4
	big := gen.InverterArray(cfgBig)
	small := gen.InverterArray(cfgSmall)
	rb := collect(t, big, 150)
	rs := collect(t, small, 150)
	spBig := EventDriven(big, rb.Steps, 15, EDDistributed, cm).
		Speedup(EventDriven(big, rb.Steps, 1, EDDistributed, cm))
	spSmall := EventDriven(small, rs.Steps, 15, EDDistributed, cm).
		Speedup(EventDriven(small, rs.Steps, 1, EDDistributed, cm))
	if spBig <= spSmall {
		t.Errorf("512 ev/tick speedup %.2f not above 64 ev/tick %.2f", spBig, spSmall)
	}
}

func TestCentralQueueCeiling(t *testing.T) {
	// The paper's initial central-queue design peaked around 2x.
	cm := DefaultCostModel()
	c := gen.InverterArray(gen.DefaultInverterArray())
	res := collect(t, c, 150)
	base := EventDriven(c, res.Steps, 1, EDCentral, cm)
	s8 := EventDriven(c, res.Steps, 8, EDCentral, cm).Speedup(base)
	if s8 > 3.5 {
		t.Errorf("central-queue speedup %.2f; contention model too weak", s8)
	}
	sDist := EventDriven(c, res.Steps, 8, EDDistributed, cm).
		Speedup(EventDriven(c, res.Steps, 1, EDDistributed, cm))
	if sDist < 2*s8 {
		t.Errorf("distributed %.2f not clearly above central %.2f", sDist, s8)
	}
}

func TestStealingHelps(t *testing.T) {
	// On the functional multiplier (dissimilar costs) stealing must beat
	// static round-robin placement.
	cm := DefaultCostModel()
	c := gen.FuncMultiplier(gen.DefaultMultiplier())
	res := collect(t, c, 1024)
	steal := EventDriven(c, res.Steps, 8, EDDistributed, cm)
	noSteal := EventDriven(c, res.Steps, 8, EDNoSteal, cm)
	if steal.Span > noSteal.Span {
		t.Errorf("stealing made things worse: %f vs %f", steal.Span, noSteal.Span)
	}
}

func TestCompiledModeShapes(t *testing.T) {
	cm := DefaultCostModel()
	cm.CachePairPenalty = 0
	// Homogeneous gate circuit: near-linear to high P.
	arr := gen.InverterArray(gen.DefaultInverterArray())
	base := Compiled(arr, 100, 1, partition.RoundRobin, cm)
	s15 := Compiled(arr, 100, 15, partition.RoundRobin, cm).Speedup(base)
	if s15 < 8 {
		t.Errorf("compiled speedup on array %.2f, want >= 8 (paper: 10-13)", s15)
	}
	// Functional multiplier: few, dissimilar elements -> poor speed-up.
	fm := gen.FuncMultiplier(gen.DefaultMultiplier())
	fbase := Compiled(fm, 100, 1, partition.RoundRobin, cm)
	fs15 := Compiled(fm, 100, 15, partition.RoundRobin, cm).Speedup(fbase)
	if fs15 > s15*0.8 {
		t.Errorf("functional compiled speedup %.2f not clearly below array %.2f", fs15, s15)
	}
}

func TestAsyncBeatsEventDrivenUtilisation(t *testing.T) {
	// Fig. 5: at high processor counts the asynchronous algorithm wins on
	// utilisation for the inverter array.
	cm := DefaultCostModel()
	c := gen.InverterArray(gen.DefaultInverterArray())
	res := collect(t, c, 150)
	edU := EventDriven(c, res.Steps, 16, EDDistributed, cm).Utilization()
	asU := Async(c, res.Graph, 16, cm).Utilization()
	if asU <= edU {
		t.Errorf("async utilisation %.2f not above event-driven %.2f", asU, edU)
	}
}

func TestAsyncUniprocessorFasterThanEventDriven(t *testing.T) {
	// Text claim T1: async on one processor is 1-3x the event-driven speed.
	cm := DefaultCostModel()
	for _, c := range []*circuit.Circuit{
		gen.InverterArray(gen.DefaultInverterArray()),
		gen.FuncMultiplier(gen.DefaultMultiplier()),
	} {
		res := collect(t, c, 200)
		ed := EventDriven(c, res.Steps, 1, EDDistributed, cm).Span
		as := Async(c, res.Graph, 1, cm).Span
		ratio := float64(ed) / float64(as)
		if ratio < 1.0 || ratio > 4.0 {
			t.Errorf("%s: async/ED uniprocessor ratio %.2f outside [1,4]", c.Name, ratio)
		}
	}
}

func TestAsyncFeedbackWorstCase(t *testing.T) {
	// T4: a long feedback chain serialises the async algorithm; extra
	// processors must buy almost nothing.
	cm := DefaultCostModel()
	c := gen.FeedbackChain(31)
	res := collect(t, c, 2000)
	base := Async(c, res.Graph, 1, cm)
	s8 := Async(c, res.Graph, 8, cm).Speedup(base)
	if s8 > 2.5 {
		t.Errorf("feedback chain async speedup %.2f; should be nearly serial", s8)
	}
}

func TestAsyncRespectsCriticalPath(t *testing.T) {
	cm := DefaultCostModel()
	cm.CachePairPenalty = 0
	cm.BusContention = 0
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 4, Cols: 8, ActiveRows: 4, TogglePeriod: 1})
	res := collect(t, c, 100)
	// With absurdly many processors the makespan approaches the critical
	// path: far below the serial span, never zero, and not worse with even
	// more processors. (Greedy scheduling with element affinity is not
	// strictly monotone in general, but is on this feed-forward graph.)
	m1 := Async(c, res.Graph, 1, cm)
	m64 := Async(c, res.Graph, 64, cm)
	m128 := Async(c, res.Graph, 128, cm)
	if m64.Span <= 0 || m128.Span <= 0 {
		t.Fatal("empty makespan")
	}
	if m64.Span >= m1.Span {
		t.Errorf("64 processors no faster than 1: %f vs %f", m64.Span, m1.Span)
	}
	if m128.Span > m64.Span {
		t.Errorf("makespan grew with processors: %f -> %f", m64.Span, m128.Span)
	}
	// The longest dependency chain is ~horizon deep; the makespan cannot
	// collapse below it.
	if m128.Span < 100 {
		t.Errorf("makespan %f below the critical-path lower bound", m128.Span)
	}
}

func TestCacheDip(t *testing.T) {
	cm := DefaultCostModel() // penalty on
	c := gen.InverterArray(gen.DefaultInverterArray())
	res := collect(t, c, 150)
	base := EventDriven(c, res.Steps, 1, EDDistributed, cm)
	s8 := EventDriven(c, res.Steps, 8, EDDistributed, cm).Speedup(base)
	s9 := EventDriven(c, res.Steps, 9, EDDistributed, cm).Speedup(base)
	// Fig. 1's dip: the ninth processor shares a cache and helps less than
	// proportionally (or hurts).
	if s9 > s8*9.0/8.0 {
		t.Errorf("no cache-sharing dip: s8=%.2f s9=%.2f", s8, s9)
	}
}

func TestMakespanHelpers(t *testing.T) {
	m := Makespan{Span: 100, Busy: []float64{50, 30}}
	if u := m.Utilization(); u != 0.4 {
		t.Errorf("utilisation = %f", u)
	}
	if s := (Makespan{Span: 50}).Speedup(m); s != 2 {
		t.Errorf("speedup = %f", s)
	}
	if (Makespan{}).Utilization() != 0 {
		t.Error("empty utilisation")
	}
	if (Makespan{}).Speedup(m) != 0 {
		t.Error("zero-span speedup")
	}
}

func TestAsyncEmptyGraph(t *testing.T) {
	cm := DefaultCostModel()
	c := gen.FeedbackChain(3)
	g := &seq.TaskGraph{}
	m := Async(c, g, 4, cm)
	if m.Span != 0 {
		t.Errorf("empty graph span = %f", m.Span)
	}
}

func TestCompiledLPTBeatsRoundRobinInModel(t *testing.T) {
	// The cost-balancing partitioner must remove the functional
	// multiplier's erratic round-robin behaviour.
	cm := DefaultCostModel()
	fm := gen.FuncMultiplier(gen.DefaultMultiplier())
	for _, p := range []int{3, 6, 12} {
		rr := Compiled(fm, 100, p, partition.RoundRobin, cm)
		lpt := Compiled(fm, 100, p, partition.CostLPT, cm)
		if lpt.Span > rr.Span {
			t.Errorf("P=%d: LPT span %f worse than round-robin %f", p, lpt.Span, rr.Span)
		}
	}
}
