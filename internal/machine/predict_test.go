package machine

import (
	"strings"
	"testing"

	"parsim/internal/analyze"
	"parsim/internal/gen"
)

func allEngines() map[string]bool {
	return map[string]bool{
		"sequential": true, "event-driven": true, "compiled": true,
		"vector": true, "jit": true, "asynchronous": true,
		"chandy-misra": true, "time-warp": true, "distributed-async": true,
	}
}

// TestPredictCoversEveryEngine: one prediction per engine, eligible
// entries sorted first by ascending span.
func TestPredictCoversEveryEngine(t *testing.T) {
	p := analyze.Profile(gen.InverterArray(gen.DefaultInverterArray()))
	preds := Predict(p, PredictOptions{MaxWorkers: 4, CostSpin: 300})
	want := allEngines()
	prevSpan, inEligible := 0.0, true
	for i, pr := range preds {
		if !want[pr.Engine] {
			t.Errorf("unexpected or duplicate engine %q", pr.Engine)
		}
		delete(want, pr.Engine)
		if pr.Eligible {
			if !inEligible {
				t.Errorf("eligible %q ranked after an ineligible entry", pr.Engine)
			}
			if i > 0 && pr.Span < prevSpan {
				t.Errorf("ranking not sorted: %q span %v after span %v", pr.Engine, pr.Span, prevSpan)
			}
			prevSpan = pr.Span
		} else {
			inEligible = false
			if pr.Reason == "" {
				t.Errorf("ineligible %q carries no reason", pr.Engine)
			}
		}
		if pr.Workers < 1 || pr.Workers > 4 {
			t.Errorf("%q predicted %d workers with a budget of 4", pr.Engine, pr.Workers)
		}
	}
	if len(want) > 0 {
		t.Errorf("missing predictions: %v", want)
	}
}

// TestPredictInverterArrayPrefersAsync pins the paper's central result:
// on the high-activity, fanout-flat inverter array the asynchronous
// algorithm wins (fig. 4), and the prediction agrees at any budget.
func TestPredictInverterArrayPrefersAsync(t *testing.T) {
	p := analyze.Profile(gen.InverterArray(gen.DefaultInverterArray()))
	for _, budget := range []int{1, 4, 16} {
		preds := Predict(p, PredictOptions{MaxWorkers: budget, CostSpin: 300})
		if preds[0].Engine != "asynchronous" {
			t.Errorf("budget %d: want asynchronous first, got %q", budget, preds[0].Engine)
		}
	}
}

// TestPredictSparseCircuitAvoidsAsyncSerialisation: the gate-level
// multiplier and the microprocessor have concentrated fanout (wide
// broadcast nodes), which serialises the lock-per-node asynchronous
// family; at one worker the measured walls put event-driven ahead and
// the contention-calibrated model must agree.
func TestPredictSparseCircuitAvoidsAsyncSerialisation(t *testing.T) {
	for _, build := range []func() *analyze.CircuitProfile{
		func() *analyze.CircuitProfile { return analyze.Profile(gen.GateMultiplier(gen.DefaultMultiplier())) },
		func() *analyze.CircuitProfile { return analyze.Profile(gen.CPU(gen.DefaultCPU())) },
	} {
		p := build()
		preds := Predict(p, PredictOptions{MaxWorkers: 1, CostSpin: 300})
		if preds[0].Engine != "event-driven" {
			t.Errorf("%s at one worker: want event-driven first, got %q (edge fanout %v)",
				p.Circuit, preds[0].Engine, p.EdgeFanout)
		}
	}
}

// TestPredictNonUnitDelayGatesCompiled: compiled and vector rank-order
// evaluation diverges from event timing on non-unit-delay circuits, so
// both must be marked ineligible with a reason.
func TestPredictNonUnitDelayGatesCompiled(t *testing.T) {
	p := analyze.Profile(gen.FuncMultiplier(gen.DefaultMultiplier()))
	if p.UnitDelay {
		t.Fatal("functional multiplier should carry block delays > 1")
	}
	preds := Predict(p, PredictOptions{MaxWorkers: 4})
	seen := 0
	for _, pr := range preds {
		if pr.Engine == "compiled" || pr.Engine == "vector" || pr.Engine == "jit" {
			seen++
			if pr.Eligible {
				t.Errorf("%q eligible on a non-unit-delay circuit", pr.Engine)
			}
			if !strings.Contains(pr.Reason, "unit") {
				t.Errorf("%q reason does not mention unit delays: %q", pr.Engine, pr.Reason)
			}
		}
	}
	if seen != 3 {
		t.Fatalf("compiled/vector/jit predictions missing (%d found)", seen)
	}
}

// TestPredictLanesAmortiseVector: a batched job divides the vector pass
// over its lanes; at 64 lanes the per-job span must drop well below the
// scalar vector prediction.
func TestPredictLanesAmortiseVector(t *testing.T) {
	p := analyze.Profile(gen.InverterArray(gen.DefaultInverterArray()))
	span := func(lanes int) float64 {
		for _, pr := range Predict(p, PredictOptions{MaxWorkers: 1, Lanes: lanes}) {
			if pr.Engine == "vector" {
				if pr.Lanes != max(1, lanes) {
					t.Fatalf("vector prediction carries %d lanes, want %d", pr.Lanes, max(1, lanes))
				}
				return pr.Span
			}
		}
		t.Fatal("no vector prediction")
		return 0
	}
	scalar, batched := span(0), span(64)
	if batched >= scalar/8 {
		t.Errorf("64 lanes predicted span %v, want << scalar %v", batched, scalar)
	}
}

// TestConfidenceBounds: confidence stays in [0, 1] and degenerate
// rankings score 1.
func TestConfidenceBounds(t *testing.T) {
	p := analyze.Profile(gen.InverterArray(gen.DefaultInverterArray()))
	preds := Predict(p, PredictOptions{MaxWorkers: 4, CostSpin: 300})
	if c := Confidence(preds); c < 0 || c > 1 {
		t.Errorf("confidence %v outside [0, 1]", c)
	}
	if c := Confidence(preds[:1]); c != 1 {
		t.Errorf("single-entry ranking should score 1, got %v", c)
	}
	if c := Confidence(nil); c != 1 {
		t.Errorf("empty ranking should score 1, got %v", c)
	}
}
