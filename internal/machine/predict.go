package machine

import (
	"math"
	"sort"

	"parsim/internal/analyze"
)

// This file extends the virtual-machine cost model from replaying traces
// (EventDriven/Compiled/Async over a sequential run) to predicting runtime
// from a static analyze.CircuitProfile alone: no simulation, no traces.
// The predictions drive engine=auto — given a profile and a worker budget,
// Predict ranks every engine's best configuration by estimated per-tick
// cost. The absolute units are arbitrary; only the ordering and the
// relative gaps matter, and the knobs below are calibrated on the four
// paper circuits against measured wall-clock (the a1 harness experiment).

// PredictOptions parameterises a prediction.
type PredictOptions struct {
	// MaxWorkers is the worker budget; each engine is swept over
	// 1,2,4,... up to this cap and ranked at its best count.
	MaxWorkers int
	// Lanes > 1 marks a batched job (only the vector engine applies).
	Lanes int
	// CostSpin mirrors Config.CostSpin: synthetic per-evaluation work that
	// shifts the balance from dispatch overhead to evaluation cost.
	CostSpin int64
	// Cost supplies the shared machine parameters (barriers, contention).
	Cost CostModel
}

// Prediction is one engine's best predicted configuration.
type Prediction struct {
	Engine   string  `json:"engine"`
	Workers  int     `json:"workers"`
	Strategy string  `json:"strategy,omitempty"`
	Lanes    int     `json:"lanes,omitempty"`
	// Span is the predicted cost of simulating one tick, abstract units.
	Span     float64 `json:"span"`
	Eligible bool    `json:"eligible"`
	Reason   string  `json:"reason,omitempty"`
}

// Model knobs specific to static prediction, separate from CostModel so the
// trace-replay models keep their paper calibration. Values are tuned so the
// ranking reproduces the measured ordering on the paper circuits.
const (
	// Per-evaluation dispatch overhead, in cost units, for the dynamically
	// scheduled engines: heap pops, valid-time checks, activation queues.
	// The asynchronous family runs leaner than the synchronous event-driven
	// engine (paper §5: async is 1-3x faster on one processor).
	edOverhead    = 6.0
	asyncOverhead = 2.5
	// Compiled-mode per-element dispatch: a jump through a precompiled
	// schedule, far below any queue.
	compiledOverhead = 1.0
	// jitOverhead is the statically compiled (codegen) engine's residual
	// per-element cost: fused gate batches run with no per-element call at
	// all, so what remains is amortised loop bookkeeping and the occasional
	// devirtualized kernel. Calibrated against the measured bench-jit
	// multiple over the compiled engine on the paper circuits.
	jitOverhead = 0.35
	// spinDiv converts Config.CostSpin into extra cost units per unit of
	// element cost (CostSpin=300 roughly triples a cost-1 gate evaluation
	// relative to its dispatch).
	spinDiv = 100.0
	// vectorPenalty is the scalar-job handicap of the vector engine: plane
	// bookkeeping makes one lane cost more than the compiled engine's
	// scalar pass, so vector only wins batched jobs.
	vectorPenalty = 1.3
	// chandyMisraPenalty scales the conservative null-message machinery.
	chandyMisraPenalty = 1.35
	// timeWarpBase/timeWarpSeq model optimistic overhead: state saving on
	// every step plus rollback risk that grows with sequential depth.
	timeWarpBase = 1.7
	timeWarpSeq  = 1.5
	// distMsgCost is the per-cut-event message cost of the
	// distributed-async engine's mailbox transport.
	distMsgCost = 12.0
	// contentionBeta scales the fanout-contention penalty of the
	// asynchronous family: engines that lock per node serialise behind wide
	// fanouts, so their work dilates with ln(edge-weighted mean fanout).
	// Calibrated on the measured one-worker walls of the paper circuits
	// (async/event-driven ratio: inverter array 1.0 at edge fanout 1,
	// gate-level multiplier 1.35 at 3.7, microprocessor 2.05 at 38.8).
	contentionBeta = 0.6
)

// Predict ranks every engine's best configuration for the profiled circuit
// under the given budget: eligible engines first, ordered by predicted
// span. The slice always contains one entry per engine.
func Predict(p *analyze.CircuitProfile, opts PredictOptions) []Prediction {
	if opts.MaxWorkers < 1 {
		opts.MaxWorkers = 1
	}
	zero := CostModel{}
	if opts.Cost == zero {
		opts.Cost = DefaultCostModel()
	}
	m := &predictor{p: p, opts: opts}
	preds := []Prediction{
		m.sequential(),
		m.eventDriven(),
		m.compiled(),
		m.vector(),
		m.jit(),
		m.async("asynchronous", 1, 0),
		m.async("chandy-misra", chandyMisraPenalty, 0),
		m.async("time-warp", timeWarpBase+timeWarpSeq*p.SeqFraction, 0),
		m.async("distributed-async", 1.1, distMsgCost),
	}
	sort.SliceStable(preds, func(i, j int) bool {
		a, b := preds[i], preds[j]
		if a.Eligible != b.Eligible {
			return a.Eligible
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		return a.Engine < b.Engine
	})
	return preds
}

// Confidence scores a ranking: the relative span gap between the two best
// eligible predictions, in [0, 1]. One eligible engine scores 1.
func Confidence(preds []Prediction) float64 {
	var spans []float64
	for _, pr := range preds {
		if pr.Eligible {
			spans = append(spans, pr.Span)
		}
	}
	if len(spans) < 2 || spans[1] <= 0 {
		return 1
	}
	c := 1 - spans[0]/spans[1]
	if c < 0 {
		return 0
	}
	return c
}

type predictor struct {
	p    *analyze.CircuitProfile
	opts PredictOptions
}

// workerSweep returns 1, 2, 4, ... capped at the budget, budget included.
func (m *predictor) workerSweep() []int {
	var ps []int
	for p := 1; p < m.opts.MaxWorkers; p *= 2 {
		ps = append(ps, p)
	}
	return append(ps, m.opts.MaxWorkers)
}

// spin is the evaluation-cost multiplier from Config.CostSpin.
func (m *predictor) spin() float64 { return 1 + float64(m.opts.CostSpin)/spinDiv }

// dynWork is the per-tick evaluation work of a dynamically scheduled engine
// with the given dispatch overhead: activity-weighted cost plus per-event
// scheduling.
func (m *predictor) dynWork(overhead float64) float64 {
	return m.p.EvalsPerTick*overhead + m.p.EvalCostPerTick*m.spin()
}

// bestStrategy picks the partition strategy with the lowest imbalance at
// the given worker count (ties to the lower cut fraction, then name order).
func (m *predictor) bestStrategy(workers int) analyze.CutQuality {
	best := analyze.CutQuality{Imbalance: math.MaxFloat64}
	for _, s := range []string{"blocks", "cost-lpt", "round-robin"} {
		cq := m.p.CutAt(s, workers)
		cq.Strategy = s
		if cq.Imbalance < best.Imbalance ||
			(cq.Imbalance == best.Imbalance && cq.CutFraction < best.CutFraction) {
			best = cq
		}
	}
	return best
}

func (m *predictor) sequential() Prediction {
	// One worker, one heap, no barriers, no contention — but also none of
	// the parallel engine's distributed queues: every event goes through the
	// single global heap. Measured one-worker walls on the paper circuits
	// have event-driven at or slightly below sequential everywhere, so the
	// reference engine carries a small dispatch surcharge and serves as the
	// ranking's baseline rather than its winner.
	return Prediction{
		Engine:   "sequential",
		Workers:  1,
		Span:     m.dynWork(edOverhead + 0.5),
		Eligible: true,
	}
}

func (m *predictor) eventDriven() Prediction {
	cm := m.opts.Cost
	work := m.dynWork(edOverhead)
	// Barriers close every active tick; idle ticks are skipped cheaply.
	active := math.Min(1, m.p.EvalsPerTick)
	best := Prediction{Engine: "event-driven", Eligible: true, Span: math.MaxFloat64}
	for _, p := range m.workerSweep() {
		span := cm.dilation(p) * work / float64(p)
		if p > 1 {
			span += 2 * (cm.BarrierBase + cm.BarrierPerP*float64(p)) * active
		}
		if span < best.Span {
			best.Span, best.Workers = span, p
		}
	}
	return best
}

func (m *predictor) compiled() Prediction {
	cm := m.opts.Cost
	// Every element evaluates every tick, active or not.
	n := float64(m.p.Elements - m.p.Generators)
	work := n*compiledOverhead + float64(m.p.TotalCost)*m.spin()
	best := Prediction{Engine: "compiled", Eligible: true, Span: math.MaxFloat64}
	for _, p := range m.workerSweep() {
		cq := m.bestStrategy(p)
		span := cm.dilation(p) * work / float64(p) * cq.Imbalance
		if p > 1 {
			span += cm.BarrierBase + cm.BarrierPerP*float64(p)
		}
		if span < best.Span {
			best.Span, best.Workers, best.Strategy = span, p, cq.Strategy
		}
	}
	if !m.p.UnitDelay {
		best.Eligible = false
		best.Reason = "non-unit delays: compiled-mode rank-order results diverge from event timing"
	}
	return best
}

func (m *predictor) vector() Prediction {
	best := m.compiled()
	best.Engine = "vector"
	best.Span *= vectorPenalty
	best.Lanes = m.opts.Lanes
	if best.Lanes < 1 {
		best.Lanes = 1
	}
	if m.opts.Lanes > 1 && best.Eligible {
		// A batched job amortises the whole pass over every lane; no scalar
		// engine can compete, and none of them produces LaneFinal at all.
		best.Span /= float64(m.opts.Lanes)
	}
	if !m.p.UnitDelay {
		best.Reason = "non-unit delays: compiled-mode rank-order results diverge from event timing"
	}
	return best
}

// jit models the statically compiled codegen engine: the compiled curve
// with the per-element dispatch term compiled away, paid for by one
// barrier per schedule level (instead of one per tick) when parallel, and
// the same lane amortisation as vector for batched jobs. Like every
// rank-order engine it is gated on unit delays.
func (m *predictor) jit() Prediction {
	cm := m.opts.Cost
	n := float64(m.p.Elements - m.p.Generators)
	work := n*jitOverhead + float64(m.p.TotalCost)*m.spin()
	// One sense-reversing barrier per level slot per tick (the unlevelized
	// slot and the end-of-step barrier included).
	levels := float64(m.p.MaxLevel + 2)
	best := Prediction{Engine: "jit", Eligible: true, Span: math.MaxFloat64}
	for _, p := range m.workerSweep() {
		cq := m.bestStrategy(p)
		span := cm.dilation(p) * work / float64(p) * cq.Imbalance
		if p > 1 {
			span += levels * (cm.BarrierBase + cm.BarrierPerP*float64(p))
		}
		if span < best.Span {
			best.Span, best.Workers, best.Strategy = span, p, cq.Strategy
		}
	}
	best.Lanes = m.opts.Lanes
	if best.Lanes < 1 {
		best.Lanes = 1
	}
	if m.opts.Lanes > 1 {
		best.Span /= float64(m.opts.Lanes)
	}
	if !m.p.UnitDelay {
		best.Eligible = false
		best.Reason = "non-unit delays: compiled-mode rank-order results diverge from event timing"
	}
	return best
}

// async models the conservative asynchronous family: no barriers, work
// split across workers, but serialised by the hottest element and by
// feedback loops (paper §4.1: a loop degenerates to one event at a time).
// penalty scales the whole engine; msgCost charges cut-edge traffic.
func (m *predictor) async(name string, penalty, msgCost float64) Prediction {
	cm := m.opts.Cost
	contention := 1 + contentionBeta*math.Log(math.Max(1, m.p.EdgeFanout))
	work := m.dynWork(asyncOverhead) * contention
	serial := math.Max(
		m.p.MaxRateCost*m.spin()+asyncOverhead,
		m.p.LoopSerialCost*m.spin())
	best := Prediction{Engine: name, Eligible: true, Span: math.MaxFloat64}
	for _, p := range m.workerSweep() {
		span := cm.dilation(p) * work / float64(p)
		if p > 1 {
			span += cm.LockCost * m.p.EvalsPerTick / float64(p)
			if msgCost > 0 {
				cq := m.p.CutAt("blocks", p)
				span += msgCost * m.p.EvalsPerTick * cq.CutFraction / float64(p)
			}
		}
		span = math.Max(span, serial) * penalty
		if span < best.Span {
			best.Span, best.Workers = span, p
		}
	}
	return best
}
