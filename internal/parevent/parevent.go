// Package parevent implements the paper's first algorithm: the synchronous
// parallel event-driven simulator.
//
// Each active time step runs the classic phases — update scheduled nodes,
// then evaluate activated elements — with all workers synchronising at a
// barrier between phases. Work distribution follows the paper's fix for
// central-queue contention: every worker owns one queue per peer, writers
// schedule round-robin onto their own queue at the target ("splitting up
// the problem into n parts when adding to the list rather than when
// removing from the list"), and once a worker drains its own queues it
// steals from the others' — the load-balancing trick the paper credits with
// 15-20% better utilisation.
//
// Mode selects the paper's ablations: the original central-queue design
// (which peaked at a speed-up of ~2) and distributed queues without
// stealing.
package parevent

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/barrier"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/eventq"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Mode selects the work-distribution scheme.
type Mode int

const (
	// Distributed uses per-worker-pair queues with round-robin scheduling
	// and end-of-phase stealing: the paper's final design.
	Distributed Mode = iota
	// NoSteal disables the end-of-phase stealing only.
	NoSteal
	// Central funnels node updates and activations through single shared
	// queues guarded by a lock: the paper's initial design, kept as an
	// ablation.
	Central
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Distributed:
		return "distributed"
	case NoSteal:
		return "no-steal"
	case Central:
		return "central"
	}
	return "unknown"
}

// Options configures a run.
type Options struct {
	Workers      int          // parallel workers (processors); >= 1
	Horizon      circuit.Time // simulate t in [0, Horizon)
	Probe        trace.Probe  // optional observer; must be concurrency-safe
	CostSpin     int64        // if > 0, burn CostSpin x element Cost per evaluation
	CollectAvail bool         // record activated-elements-per-step histogram
	Mode         Mode
	// Guard is the optional run supervisor: worker panics are contained,
	// worker 0 publishes the current step as progress, and a trip aborts
	// the phase barrier so no survivor spins for a dead peer.
	Guard *guard.Supervisor
}

// Result is the outcome of a run.
type Result struct {
	Run   stats.Run
	Final []logic.Value
}

// timedUpdate is a node change scheduled for a future step.
type timedUpdate struct {
	t  circuit.Time
	up eventq.Update
}

// evalList is one (target, source) activation queue: the source appends
// during the update phase; during the evaluation phase the target — or,
// when it runs dry, a thief — consumes entries through the atomic cursor.
type evalList struct {
	items  []circuit.ElemID
	cursor atomic.Int64
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	val       []logic.Value
	projected []logic.Value
	state     [][]logic.Value
	claimed   []atomic.Bool

	wheels []*eventq.Queue
	inbox  [][][]timedUpdate // [target][source]
	evalQ  [][]*evalList     // [target][source]
	peek   []int64           // published per-worker next event time (-1 none)

	// Central-mode shared structures.
	centralMu    sync.Mutex
	centralQ     *eventq.Queue
	centralUps   []eventq.Update
	centralUpCur int
	centralAct   []circuit.ElemID
	centralCur   int

	bar     *barrier.Barrier
	stepN   atomic.Int64
	wc      []stats.WorkerCounters // per-worker counters
	avail   stats.Histogram
	cancel  *engine.CancelFlag
	chaos   *guard.ChaosProbe // captured once; nil on production runs
	stopped atomic.Bool       // cancellation agreed; all workers exit in phase B
}

// Run simulates the circuit with opts.Workers parallel workers.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled all workers
// stop together at the next time step (the cancellation is observed by
// worker 0 in the scheduling phase and acted on by everyone after the
// phase barrier, so no worker is left waiting) and the partial result is
// returned with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	p := opts.Workers
	s := &sim{
		c:         c,
		opts:      opts,
		p:         p,
		val:       make([]logic.Value, len(c.Nodes)),
		projected: make([]logic.Value, len(c.Nodes)),
		state:     make([][]logic.Value, len(c.Elems)),
		claimed:   make([]atomic.Bool, len(c.Elems)),
		wheels:    make([]*eventq.Queue, p),
		inbox:     make([][][]timedUpdate, p),
		evalQ:     make([][]*evalList, p),
		peek:      make([]int64, p),
		bar:       barrier.New(p),
		wc:        make([]stats.WorkerCounters, p),
		centralQ:  eventq.New(),
		cancel:    engine.WatchCancel(ctx),
		chaos:     opts.Guard.Chaos(),
	}
	defer s.cancel.Release()
	opts.Guard.OnTrip(s.bar.Abort)
	for i := range c.Nodes {
		s.val[i] = logic.AllX(c.Nodes[i].Width)
		s.projected[i] = s.val[i]
	}
	for i := range c.Elems {
		if n := c.Elems[i].NumStateVals(); n > 0 {
			s.state[i] = make([]logic.Value, n)
			c.Elems[i].InitState(s.state[i])
		}
	}
	for w := 0; w < p; w++ {
		s.wheels[w] = eventq.New()
		s.inbox[w] = make([][]timedUpdate, p)
		s.evalQ[w] = make([]*evalList, p)
		for src := 0; src < p; src++ {
			s.evalQ[w][src] = &evalList{}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer opts.Guard.Recover(w, "event-driven phase loop")
			newWorker(s, w).run()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result{Final: s.val}
	res.Run = stats.Run{
		Algorithm: "parallel-event-driven(" + opts.Mode.String() + ")",
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
		TimeSteps: s.stepN.Load(),
		Avail:     s.avail,
	}
	for w := 0; w < p; w++ {
		s.wc[w].ModelCalls = s.wc[w].Evals
	}
	res.Run.Aggregate(wall, s.wc)
	return res, s.cancel.Err(ctx)
}

// worker is the per-goroutine state.
type worker struct {
	s     *sim
	id    int
	sense barrier.Sense

	genIDs  []circuit.ElemID
	genNext []circuit.Time

	rrUpdate int // round-robin targets for scheduling updates
	rrEval   int // round-robin targets for activations

	inBuf, outBuf []logic.Value
	idle          time.Duration
}

func newWorker(s *sim, id int) *worker {
	w := &worker{s: s, id: id}
	gens := s.c.Generators()
	for i, g := range gens {
		owner := i % s.p
		if s.opts.Mode == Central {
			owner = 0
		}
		if owner == id {
			w.genIDs = append(w.genIDs, g)
			w.genNext = append(w.genNext, 0)
		}
	}
	w.rrUpdate = id
	w.rrEval = id
	return w
}

// wait passes the barrier, accounting blocked time as idle. It returns
// false when the barrier was aborted by the supervisor (a peer died or
// the watchdog tripped); the caller must exit its loop.
func (w *worker) wait() bool {
	t0 := time.Now()
	ok := w.s.bar.Wait(&w.sense)
	w.s.wc[w.id].BarrierWaits++
	w.idle += time.Since(t0)
	return ok
}

func (w *worker) run() {
	s := w.s
	defer func() { s.wc[w.id].Idle = w.idle }()
	for {
		// Phase A: fold newly scheduled updates into the local wheel and
		// publish the earliest pending time. Worker 0 also notes context
		// cancellation here; the flag is read by everyone in phase B, on
		// the far side of the barrier, so all workers exit together.
		if w.id == 0 && s.cancel.Cancelled() {
			s.stopped.Store(true)
		}
		if s.opts.Mode == Central {
			if w.id == 0 {
				s.peek[0] = w.centralPeek()
			}
		} else {
			for src := 0; src < s.p; src++ {
				box := s.inbox[w.id][src]
				for _, tu := range box {
					s.wheels[w.id].Schedule(tu.t, tu.up)
				}
				s.inbox[w.id][src] = box[:0]
			}
			s.peek[w.id] = w.localPeek()
		}
		if !w.wait() {
			return
		}

		// Phase B: agree on the global time, apply node updates, claim and
		// distribute activated elements.
		if s.stopped.Load() {
			return
		}
		t := circuit.Time(-1)
		lim := s.p
		if s.opts.Mode == Central {
			lim = 1
		}
		for i := 0; i < lim; i++ {
			if pt := s.peek[i]; pt >= 0 && (t < 0 || circuit.Time(pt) < t) {
				t = circuit.Time(pt)
			}
		}
		if t < 0 || t >= s.opts.Horizon {
			return
		}
		if w.id == 0 {
			s.stepN.Add(1)
			s.opts.Guard.Progress(int64(t))
		}
		if s.opts.Mode == Central {
			if !w.centralUpdatePhase(t) {
				return
			}
		} else {
			w.updatePhase(t)
		}
		if !w.wait() {
			return
		}

		if s.opts.CollectAvail && w.id == 0 {
			n := 0
			if s.opts.Mode == Central {
				n = len(s.centralAct)
			} else {
				for _, row := range s.evalQ {
					for _, el := range row {
						n += len(el.items)
					}
				}
			}
			s.avail.Observe(n)
		}

		// Phase C: evaluate claimed elements, scheduling resulting changes.
		if s.opts.Mode == Central {
			w.centralEvalPhase(t)
		} else {
			w.evalPhase(t)
		}
		if !w.wait() {
			return
		}
	}
}

// localPeek returns the earliest time pending in this worker's wheel or
// generator agenda, or -1.
func (w *worker) localPeek() int64 {
	next := int64(-1)
	if t, ok := w.s.wheels[w.id].Peek(); ok {
		next = int64(t)
	}
	for _, gt := range w.genNext {
		if gt >= 0 && (next < 0 || int64(gt) < next) {
			next = int64(gt)
		}
	}
	return next
}

func (w *worker) updatePhase(t circuit.Time) {
	s := w.s
	// Fresh activation lists for this step. Safe: the previous evaluation
	// phase ended at a barrier, so no consumer holds them.
	for tgt := 0; tgt < s.p; tgt++ {
		q := s.evalQ[tgt][w.id]
		q.items = q.items[:0]
		q.cursor.Store(0)
	}
	// Generator changes owned by this worker.
	for i, gt := range w.genNext {
		if gt != t {
			continue
		}
		el := &s.c.Elems[w.genIDs[i]]
		w.applyUpdate(el.Out[0], t, el.GenValueAt(t))
		if next, ok := el.GenNextChange(t); ok && next < s.opts.Horizon {
			w.genNext[i] = next
		} else {
			w.genNext[i] = -1
		}
	}
	// Scheduled updates that landed on this worker.
	if pt, ok := s.wheels[w.id].Peek(); ok && pt == t {
		_, ups, _ := s.wheels[w.id].PopNext()
		for _, u := range ups {
			w.applyUpdate(u.Node, t, u.Value)
		}
	}
}

// applyUpdate performs one node update and claims the activated fan-out
// elements, distributing them round-robin across workers.
func (w *worker) applyUpdate(n circuit.NodeID, t circuit.Time, v logic.Value) {
	s := w.s
	if v.Equal(s.val[n]) {
		return
	}
	s.val[n] = v
	w.s.wc[w.id].NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
	for _, pr := range s.c.Nodes[n].Fanout {
		if s.claimed[pr.Elem].CompareAndSwap(false, true) {
			tgt := w.rrEval % s.p
			w.rrEval++
			q := s.evalQ[tgt][w.id]
			q.items = append(q.items, pr.Elem)
		}
	}
}

// evalPhase consumes this worker's activation lists, then steals.
func (w *worker) evalPhase(t circuit.Time) {
	s := w.s
	for src := 0; src < s.p; src++ {
		w.drain(t, s.evalQ[w.id][src])
	}
	if s.opts.Mode == NoSteal {
		return
	}
	for off := 1; off < s.p; off++ {
		victim := (w.id + off) % s.p
		for src := 0; src < s.p; src++ {
			s.wc[w.id].Steals += w.drain(t, s.evalQ[victim][src])
		}
	}
}

// drain consumes entries through the atomic cursor, returning how many
// this worker evaluated.
func (w *worker) drain(t circuit.Time, q *evalList) int64 {
	var n int64
	for {
		idx := q.cursor.Add(1) - 1
		if idx >= int64(len(q.items)) {
			return n
		}
		w.evaluate(t, q.items[idx])
		n++
	}
}

// evaluate runs one element and schedules its changed outputs round-robin.
func (w *worker) evaluate(t circuit.Time, id circuit.ElemID) {
	s := w.s
	el := &s.c.Elems[id]
	s.claimed[id].Store(false)
	s.wc[w.id].Evals++
	if s.chaos != nil {
		s.chaos.Eval()
	}
	if cap(w.inBuf) < len(el.In) {
		w.inBuf = make([]logic.Value, len(el.In))
	}
	in := w.inBuf[:len(el.In)]
	for i, n := range el.In {
		in[i] = s.val[n]
	}
	if cap(w.outBuf) < len(el.Out) {
		w.outBuf = make([]logic.Value, len(el.Out))
	}
	out := w.outBuf[:len(el.Out)]
	el.Eval(in, s.state[id], out)
	if s.opts.CostSpin > 0 {
		circuit.Spin(el.Cost * s.opts.CostSpin)
	}
	for p, n := range el.Out {
		if out[p].Equal(s.projected[n]) {
			continue
		}
		s.projected[n] = out[p]
		w.schedule(t+el.Delay, eventq.Update{Node: n, Value: out[p]})
	}
}

func (w *worker) schedule(t circuit.Time, up eventq.Update) {
	s := w.s
	if s.opts.Mode == Central {
		s.centralMu.Lock()
		s.centralQ.Schedule(t, up)
		s.centralMu.Unlock()
		return
	}
	tgt := w.rrUpdate % s.p
	w.rrUpdate++
	s.inbox[tgt][w.id] = append(s.inbox[tgt][w.id], timedUpdate{t: t, up: up})
}

// ---- Central-queue mode (the paper's initial, contended design) ----

func (w *worker) centralPeek() int64 {
	next := int64(-1)
	if t, ok := w.s.centralQ.Peek(); ok {
		next = int64(t)
	}
	for _, gt := range w.genNext {
		if gt >= 0 && (next < 0 || int64(gt) < next) {
			next = int64(gt)
		}
	}
	return next
}

// centralUpdatePhase stages and applies the step's update bucket. It
// returns false when its staging barrier was aborted mid-phase.
func (w *worker) centralUpdatePhase(t circuit.Time) bool {
	s := w.s
	if w.id == 0 {
		// Generator changes and this step's update bucket are staged by
		// worker 0; all workers then contend for them one at a time.
		s.centralUps = s.centralUps[:0]
		s.centralUpCur = 0
		s.centralAct = s.centralAct[:0]
		s.centralCur = 0
		for i, gt := range w.genNext {
			if gt != t {
				continue
			}
			el := &s.c.Elems[w.genIDs[i]]
			s.centralUps = append(s.centralUps,
				eventq.Update{Node: el.Out[0], Value: el.GenValueAt(t)})
			if next, ok := el.GenNextChange(t); ok && next < s.opts.Horizon {
				w.genNext[i] = next
			} else {
				w.genNext[i] = -1
			}
		}
		if pt, ok := s.centralQ.Peek(); ok && pt == t {
			_, ups, _ := s.centralQ.PopNext()
			s.centralUps = append(s.centralUps, ups...)
		}
	}
	if !w.wait() { // staging barrier: everyone sees the bucket
		return false
	}
	for {
		s.centralMu.Lock()
		if s.centralUpCur >= len(s.centralUps) {
			s.centralMu.Unlock()
			return true
		}
		u := s.centralUps[s.centralUpCur]
		s.centralUpCur++
		s.centralMu.Unlock()
		w.centralApply(u.Node, t, u.Value)
	}
}

// centralApply is applyUpdate with activations pushed to the shared list.
func (w *worker) centralApply(n circuit.NodeID, t circuit.Time, v logic.Value) {
	s := w.s
	if v.Equal(s.val[n]) {
		return
	}
	s.val[n] = v
	s.wc[w.id].NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
	for _, pr := range s.c.Nodes[n].Fanout {
		if s.claimed[pr.Elem].CompareAndSwap(false, true) {
			s.centralMu.Lock()
			s.centralAct = append(s.centralAct, pr.Elem)
			s.centralMu.Unlock()
		}
	}
}

func (w *worker) centralEvalPhase(t circuit.Time) {
	s := w.s
	for {
		s.centralMu.Lock()
		if s.centralCur >= len(s.centralAct) {
			s.centralMu.Unlock()
			return
		}
		id := s.centralAct[s.centralCur]
		s.centralCur++
		s.centralMu.Unlock()
		w.evaluate(t, id)
	}
}
