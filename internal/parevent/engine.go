package parevent

import (
	"context"

	"parsim/internal/circuit"
	"parsim/internal/engine"
)

// eng adapts the synchronous parallel event-driven simulator to the
// unified engine layer.
type eng struct{}

func (eng) Name() string { return "event-driven" }

func (eng) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	mode := Distributed
	switch {
	case cfg.CentralQueue:
		mode = Central
	case cfg.NoSteal:
		mode = NoSteal
	}
	res, err := RunContext(ctx, c, Options{
		Workers:      cfg.Workers,
		Horizon:      cfg.Horizon,
		Probe:        cfg.Probe,
		CostSpin:     cfg.CostSpin,
		CollectAvail: cfg.CollectAvail,
		Mode:         mode,
		Guard:        cfg.Guard,
	})
	if res == nil {
		return nil, err
	}
	return &engine.Report{Run: res.Run, Final: res.Final}, err
}

func init() { engine.Register(eng{}, "event", "parallel-event-driven") }
