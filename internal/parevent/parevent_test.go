package parevent

import (
	"context"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

// crossCheck runs the circuit under the sequential oracle and under this
// simulator with the given options, requiring identical node histories.
func crossCheck(t *testing.T, c *circuit.Circuit, horizon circuit.Time, opts Options) *Result {
	t.Helper()
	ref := trace.NewRecorder()
	seqRes := seq.Run(c, seq.Options{Horizon: horizon, Probe: ref})

	got := trace.NewRecorder()
	opts.Horizon = horizon
	opts.Probe = got
	res := Run(c, opts)

	if d := trace.Diff(c, ref, got); d != "" {
		t.Fatalf("%s (P=%d, %v): history mismatch: %s", c.Name, opts.Workers, opts.Mode, d)
	}
	if res.Run.NodeUpdates != seqRes.Run.NodeUpdates {
		t.Errorf("node updates %d != sequential %d", res.Run.NodeUpdates, seqRes.Run.NodeUpdates)
	}
	if res.Run.Evals == 0 && seqRes.Run.Evals != 0 {
		t.Error("no evaluations recorded")
	}
	for i := range res.Final {
		if !res.Final[i].Equal(seqRes.Final[i]) {
			t.Errorf("final value of node %s differs", c.Nodes[i].Name)
		}
	}
	return res
}

func TestMatchesSequentialOnArray(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 6, TogglePeriod: 2})
	for _, p := range []int{1, 2, 3, 4, 8} {
		crossCheck(t, c, 300, Options{Workers: p})
	}
}

func TestMatchesSequentialOnFuncMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.InPeriod = 64
	c := gen.FuncMultiplier(cfg)
	for _, p := range []int{1, 3, 4} {
		crossCheck(t, c, 512, Options{Workers: p})
	}
}

func TestMatchesSequentialOnGateMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 128
	c := gen.GateMultiplier(cfg)
	crossCheck(t, c, 512, Options{Workers: 4})
}

func TestMatchesSequentialOnCPU(t *testing.T) {
	cfg := gen.DefaultCPU()
	c := gen.CPU(cfg)
	res := crossCheck(t, c, gen.CPUHorizon(cfg, 40), Options{Workers: 4})
	if res.Run.TimeSteps == 0 {
		t.Error("no time steps")
	}
}

func TestMatchesSequentialOnFeedback(t *testing.T) {
	c := gen.FeedbackChain(13)
	crossCheck(t, c, 600, Options{Workers: 4})
}

func TestMatchesSequentialOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		c := gen.RandomCircuit(seed, 80)
		crossCheck(t, c, 250, Options{Workers: 3})
	}
}

func TestAllModesMatch(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 6, Cols: 6, ActiveRows: 6, TogglePeriod: 1})
	for _, m := range []Mode{Distributed, NoSteal, Central} {
		crossCheck(t, c, 200, Options{Workers: 4, Mode: m})
	}
}

func TestModeNames(t *testing.T) {
	if Distributed.String() != "distributed" || NoSteal.String() != "no-steal" ||
		Central.String() != "central" || Mode(9).String() != "unknown" {
		t.Error("mode names wrong")
	}
}

func TestAvailabilityCollection(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 4, TogglePeriod: 1})
	res := Run(c, Options{Workers: 2, Horizon: 100, CollectAvail: true})
	if res.Run.Avail.N() == 0 {
		t.Fatal("no availability samples")
	}
	// Steady state: 16 inverters + 4 inputs active each tick.
	if mean := res.Run.Avail.Mean(); mean < 8 || mean > 24 {
		t.Errorf("mean availability %.1f out of range", mean)
	}
}

func TestUtilizationBounded(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	res := Run(c, Options{Workers: 2, Horizon: 400})
	u := res.Run.Utilization()
	if u <= 0 || u > 1.0001 {
		t.Errorf("utilisation %f out of (0,1]", u)
	}
}

func TestBadWorkerCountError(t *testing.T) {
	c := gen.FeedbackChain(3)
	res, err := RunContext(context.Background(), c, Options{Workers: 0, Horizon: 10})
	if err == nil {
		t.Fatal("Workers=0 did not return an error")
	}
	if res != nil {
		t.Fatal("bad config must not produce a result")
	}
}

func TestDeterministicHistories(t *testing.T) {
	// Parallel execution order varies, but histories must not.
	c := gen.RandomCircuit(5, 100)
	r1 := trace.NewRecorder()
	Run(c, Options{Workers: 4, Horizon: 300, Probe: r1})
	r2 := trace.NewRecorder()
	Run(c, Options{Workers: 4, Horizon: 300, Probe: r2})
	if d := trace.Diff(c, r1, r2); d != "" {
		t.Fatalf("two runs differ: %s", d)
	}
}
