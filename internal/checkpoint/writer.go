package checkpoint

import (
	"errors"
	"sync"
	"time"
)

// DefaultGap is the minimum wall-clock spacing between durable writes when
// the plan does not set one. Simulated steps on the paper circuits take
// microseconds, so writing (and fsyncing) at every interval would spend
// more time in the kernel than in the simulation; one durable snapshot per
// quarter second bounds crash loss to human-imperceptible work while
// keeping the write-side overhead near zero.
const DefaultGap = 250 * time.Millisecond

// Writer moves snapshot persistence off the simulation's critical path.
// Engines capture state at a quiescent point (a deep copy — the simulation
// keeps mutating after the handoff) and pass it to Save, which returns
// immediately; a background goroutine performs the atomic encode + fsync +
// rename. When the simulation outruns the disk, queued snapshots are
// coalesced: only the newest unwritten snapshot is kept, since crash
// durability needs the most recent quiescent point, not every one. Durable
// writes are additionally spaced at least the plan's gap apart (the first
// is immediate), so a fast simulation is not slowed by back-to-back
// fsyncs.
//
// Close flushes the pending snapshot before returning, so a drained run's
// final capture is durable by the time the engine exits.
type Writer struct {
	plan    Plan
	gap     time.Duration
	done    chan struct{}
	closing chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	next      *Snapshot // newest snapshot not yet picked up by the goroutine
	busy      bool      // goroutine is writing (or gap-waiting to write)
	last      time.Time // completion time of the most recent durable write
	err       error     // first write failure; sticky
	closed    bool
	closeOnce sync.Once
}

// NewWriter starts the background writer for the plan.
func NewWriter(plan Plan) *Writer {
	w := &Writer{
		plan:    plan,
		gap:     plan.Gap,
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
	if w.gap == 0 {
		w.gap = DefaultGap
	}
	w.cond = sync.NewCond(&w.mu)
	go w.run()
	return w
}

func (w *Writer) run() {
	defer close(w.done)
	var lastWrite time.Time // zero: the first snapshot is written immediately
	w.mu.Lock()
	for {
		for w.next == nil && !w.closed {
			w.cond.Wait()
		}
		if w.next == nil { // closed and drained
			w.mu.Unlock()
			return
		}
		s := w.next
		w.next = nil
		w.busy = true
		w.mu.Unlock()
		if !lastWrite.IsZero() {
			if d := w.gap - time.Since(lastWrite); d > 0 {
				// Space durable writes out; a Close interrupts the wait so
				// the final flush is not delayed. Snapshots arriving during
				// the wait coalesce, and the newest one wins below.
				select {
				case <-time.After(d):
				case <-w.closing:
				}
				w.mu.Lock()
				if w.next != nil {
					s = w.next
					w.next = nil
				}
				w.mu.Unlock()
			}
		}
		err := Save(w.plan.Path, s)
		lastWrite = time.Now()
		if err == nil && w.plan.OnSave != nil {
			// Fires after the durable save, from the writer goroutine —
			// possibly concurrent with the simulation's next steps.
			w.plan.OnSave(s.Step)
		}
		w.mu.Lock()
		w.busy = false
		w.last = lastWrite
		if err != nil && w.err == nil {
			w.err = err
		}
	}
}

// Ready reports whether a capture handed to Save now would be written
// promptly: the writer is idle and the gap since the last durable write has
// elapsed. Engines use it to skip the capture itself — packing a snapshot
// that would only be coalesced away is wasted work on the critical path.
// The final capture of a drain skips this check; Close flushes it
// immediately.
func (w *Writer) Ready() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed || w.busy || w.next != nil {
		return false
	}
	return w.last.IsZero() || time.Since(w.last) >= w.gap
}

// DiscardPending drops a snapshot the goroutine has not yet picked up.
// Engines call it when a run completes normally: the final state has
// nothing left to resume, so flushing it at Close would only cost another
// fsync. If no write has landed yet (a run shorter than the writer's first
// scheduling), the pending capture is kept — Close flushes it so the run
// leaves a snapshot behind at all. Best-effort — a snapshot already being
// written still lands.
func (w *Writer) DiscardPending() {
	w.mu.Lock()
	if !w.last.IsZero() {
		w.next = nil
	}
	w.mu.Unlock()
}

// Save hands a snapshot to the background writer and returns immediately.
// If an earlier write failed, that error is returned and the snapshot is
// dropped — the engine stops checkpointing into a broken target.
func (w *Writer) Save(s *Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("checkpoint: writer closed")
	}
	w.next = s
	w.cond.Signal()
	return nil
}

// Close flushes the pending snapshot, stops the background goroutine and
// returns the first write error. Safe to call more than once.
func (w *Writer) Close() error {
	w.closeOnce.Do(func() { close(w.closing) })
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.cond.Signal()
	}
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
