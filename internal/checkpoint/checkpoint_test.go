package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parsim/internal/logic"
	"parsim/internal/stats"
)

// sampleSnapshot populates every section of the snapshot with
// representative data, so the round-trip test covers the full wire shape.
func sampleSnapshot() *Snapshot {
	v1 := PackValue(logic.V(1, 1))
	v0 := PackValue(logic.V(1, 0))
	return &Snapshot{
		Engine:    "sequential",
		Digest:    [32]byte{1, 2, 3, 4, 5},
		Step:      1234,
		TimeSteps: 617,
		Workers: []stats.WorkerCounters{
			{Evals: 10, NodeUpdates: 4, BarrierWaits: 2},
			{Evals: 12, NodeUpdates: 5, BarrierWaits: 2},
		},
		Values:    []RawValue{v0, v1},
		Projected: []RawValue{v1, v1},
		ElemState: [][]RawValue{{v0}, nil},
		Events: []Event{
			{T: 1235, Node: 0, Value: v1},
			{T: 1236, Node: 1, Value: v0},
		},
		QueueCur: 7,
		GenNext:  []int64{1240, -1},
		Planes: []PlaneState{
			{V: []uint64{0xdeadbeef}, U: []uint64{0}},
		},
		Kernels: []KernelState{
			{Planes: []PlaneState{{V: []uint64{1}, U: []uint64{2}}}, Lanes: [][]RawValue{{v1}}},
		},
		HasTrace: true,
		Trace: []TraceChange{
			{Node: 2, T: 100, Value: v1},
		},
		Fault: &FaultState{
			Pass:     1,
			Ran:      1,
			Statuses: []stats.FaultStatus{{Detected: true}},
			Det:      [][]uint64{{0b1010}},
			First:    [][]int64{{42}},
			Acc:      RunCounters{TimeSteps: 600, Evals: 999},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	want := sampleSnapshot()
	if err := Save(path, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the snapshot:\nwant %+v\n got %+v", want, got)
	}
	if err := Verify(path, got, "sequential", want.Digest); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSaveReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	first := sampleSnapshot()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Step = 9999
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 9999 {
		t.Fatalf("Load after second Save: step %d, want 9999", got.Step)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after atomic saves, want 1", len(entries))
	}
}

// corruptErr asserts err is a *CorruptError (the typed contract: damaged
// snapshots never decode, never panic, never surface as generic errors).
func corruptErr(t *testing.T, err error, label string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: corruption accepted", label)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: error %v is not a *CorruptError", label, err)
	}
}

func TestLoadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point: inside the header, at the header boundary,
	// and mid-payload.
	for _, n := range []int{0, 3, 7, 15, headerSize - 1, headerSize, len(data) / 2, len(data) - 1} {
		_, err := decode(path, data[:n])
		corruptErr(t, err, "truncated to "+string(rune('0'+n%10)))
	}
}

func TestLoadBitFlips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte of the file; each damaged image must be
	// rejected as corrupt (magic, version, length, checksum or payload).
	for i := range orig {
		data := append([]byte(nil), orig...)
		data[i] ^= 0x40
		if _, err := decode(path, data); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		} else {
			corruptErr(t, err, "bit flip")
		}
	}
}

func TestLoadWrongMagicAndVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := Save(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	copy(bad[0:4], "ELF\x7f")
	_, derr := decode(path, bad)
	corruptErr(t, derr, "bad magic")

	bad = append([]byte(nil), data...)
	bad[4] = 99
	_, derr = decode(path, bad)
	corruptErr(t, derr, "future version")
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err == nil {
		t.Fatal("missing file loaded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error %v does not wrap os.ErrNotExist", err)
	}
}

func TestVerifyMismatches(t *testing.T) {
	s := sampleSnapshot()
	var me *MismatchError
	if err := Verify("p", s, "vector", s.Digest); !errors.As(err, &me) || me.Field != "engine" {
		t.Fatalf("engine mismatch: %v", err)
	}
	other := s.Digest
	other[0] ^= 0xff
	if err := Verify("p", s, "sequential", other); !errors.As(err, &me) || me.Field != "content digest" {
		t.Fatalf("digest mismatch: %v", err)
	}
	if err := Verify("p", s, "sequential", s.Digest); err != nil {
		t.Fatalf("matching verify failed: %v", err)
	}
}

func TestUnpackRejectsNonCanonical(t *testing.T) {
	// Bits set outside the declared width are non-canonical; a tampered
	// snapshot must not smuggle them past Unpack.
	rv := RawValue{B: 0xff, U: 0, Z: 0, W: 1}
	if _, err := rv.Unpack(); err == nil {
		t.Fatal("non-canonical RawValue unpacked")
	}
	if _, err := UnpackValues([]RawValue{PackValue(logic.V(1, 1)), rv}); err == nil {
		t.Fatal("UnpackValues accepted a non-canonical entry")
	}
}
