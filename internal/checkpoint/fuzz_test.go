package checkpoint

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzCheckpoint throws arbitrary bytes at the snapshot decoder. The
// contract under attack: decode never panics, every rejection is a typed
// *CorruptError, and anything the decoder accepts survives a re-encode
// round trip unchanged.
func FuzzCheckpoint(f *testing.F) {
	valid, err := encode(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-1])
	for _, i := range []int{0, 4, 8, 16, headerSize, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 0x01
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decode("fuzz", data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode rejection %v is not a *CorruptError", err)
			}
			return
		}
		// Accepted input: the snapshot must re-encode and decode back to
		// itself, so a resume sees exactly what was saved.
		out, err := encode(s)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		again, err := decode("fuzz", out)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatal("accepted snapshot did not survive a re-encode round trip")
		}
	})
}
