package checkpoint

import (
	"crypto/sha256"
	"fmt"
	"io"

	"parsim/internal/circuit"
)

// Identity is the set of run options that change simulated behaviour. It is
// hashed together with the netlist so a snapshot can only be resumed under
// the exact configuration that produced it — resuming a 4-lane run with 8
// lanes, or a fault-sim snapshot without fault-sim, fails with a
// MismatchError instead of silently diverging.
type Identity struct {
	Engine         string
	Horizon        int64
	Workers        int
	Strategy       string
	Lanes          int
	LaneStride     int64
	ProbeLane      int
	CostSpin       int64
	FaultSim       bool
	FaultMaxPasses int
	FaultStatuses  bool
	CollectAvail   bool
}

// Digest hashes a canonical dump of the circuit and the run identity into
// the snapshot-compatibility digest.
func Digest(c *circuit.Circuit, id Identity) ([32]byte, error) {
	h := sha256.New()
	dumpCircuit(h, c)
	fmt.Fprintf(h, "\x00engine=%s horizon=%d workers=%d strategy=%s lanes=%d stride=%d probelane=%d spin=%d fault=%t fpasses=%d fstatuses=%t avail=%t\n",
		id.Engine, id.Horizon, id.Workers, id.Strategy, id.Lanes, id.LaneStride,
		id.ProbeLane, id.CostSpin, id.FaultSim, id.FaultMaxPasses, id.FaultStatuses, id.CollectAvail)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d, nil
}

// dumpCircuit writes a canonical description of every structural property
// that affects simulation: nodes (name, width), elements (kind, wiring,
// delay, cost, parameters) in ID order. Two circuits that dump identically
// simulate identically.
func dumpCircuit(w io.Writer, c *circuit.Circuit) {
	fmt.Fprintf(w, "circuit %s\n", c.Name)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		fmt.Fprintf(w, "node %s %d\n", n.Name, n.Width)
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		fmt.Fprintf(w, "elem %s %s delay=%d cost=%d in=%v out=%v", circuit.KindName(el.Kind), el.Name, el.Delay, el.Cost, el.In, el.Out)
		p := &el.Params
		fmt.Fprintf(w, " init=%v period=%d phase=%d duty=%d lo=%d shift=%d seed=%d times=%v values=%v mem=%v\n",
			p.Init, p.Period, p.Phase, p.Duty, p.Lo, p.Shift, p.Seed, p.Times, p.Values, p.Mem)
	}
}
