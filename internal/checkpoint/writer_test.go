package checkpoint

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collectSaves returns a plan whose OnSave appends durably-written steps.
func collectSaves(path string, gap time.Duration) (Plan, func() []int64) {
	var mu sync.Mutex
	var steps []int64
	plan := Plan{
		Path:  path,
		Every: 1,
		Gap:   gap,
		OnSave: func(step int64) {
			mu.Lock()
			steps = append(steps, step)
			mu.Unlock()
		},
	}
	return plan, func() []int64 {
		mu.Lock()
		defer mu.Unlock()
		return append([]int64(nil), steps...)
	}
}

func snapAt(step int64) *Snapshot {
	s := sampleSnapshot()
	s.Step = step
	return s
}

// With a gap far longer than the test, the first save is written
// immediately, intermediate saves coalesce, and Close flushes the newest.
func TestWriterCoalescesUnderGap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ckpt")
	plan, saved := collectSaves(path, time.Hour)
	w := NewWriter(plan)
	if err := w.Save(snapAt(1)); err != nil {
		t.Fatal(err)
	}
	// The first save is written immediately (no gap wait); let it land
	// before queueing more so the coalescing below is deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for len(saved()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first save never landed")
		}
		time.Sleep(time.Millisecond)
	}
	for step := int64(2); step <= 5; step++ {
		if err := w.Save(snapAt(step)); err != nil {
			t.Fatalf("Save(%d): %v", step, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	steps := saved()
	if steps[0] != 1 {
		t.Fatalf("first durable save %v, want step 1 written immediately", steps)
	}
	if last := steps[len(steps)-1]; last != 5 {
		t.Fatalf("final durable save at step %d, want the newest (5) flushed by Close", last)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load after Close: %v", err)
	}
	if got.Step != 5 {
		t.Fatalf("snapshot on disk is step %d, want 5", got.Step)
	}
}

// DiscardPending drops a queued snapshot once something durable exists, but
// keeps the only capture of a run too short for the writer to get
// scheduled.
func TestWriterDiscardPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ckpt")
	plan, saved := collectSaves(path, time.Hour)
	w := NewWriter(plan)
	if err := w.Save(snapAt(1)); err != nil {
		t.Fatal(err)
	}
	// Wait for the immediate first write to land.
	deadline := time.Now().Add(5 * time.Second)
	for len(saved()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first save never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Save(snapAt(2)); err != nil {
		t.Fatal(err)
	}
	w.DiscardPending()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if steps := saved(); len(steps) != 1 || steps[0] != 1 {
		t.Fatalf("durable saves %v, want only step 1 (step 2 discarded)", steps)
	}

	// A writer that never wrote keeps its pending capture on discard.
	path2 := filepath.Join(t.TempDir(), "w2.ckpt")
	plan2, saved2 := collectSaves(path2, time.Hour)
	w2 := NewWriter(plan2)
	// No sleep: discard races the goroutine's pickup deliberately — either
	// way the capture must survive to disk.
	if err := w2.Save(snapAt(7)); err != nil {
		t.Fatal(err)
	}
	w2.DiscardPending()
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if steps := saved2(); len(steps) != 1 || steps[0] != 7 {
		t.Fatalf("durable saves %v, want the only capture (7) kept", steps)
	}
}

// A write failure is sticky: later Saves report it and Close returns it.
func TestWriterErrorSticks(t *testing.T) {
	// A directory that does not exist makes CreateTemp fail.
	plan := Plan{Path: filepath.Join(t.TempDir(), "missing", "w.ckpt"), Every: 1, Gap: time.Nanosecond}
	w := NewWriter(plan)
	if err := w.Save(snapAt(1)); err != nil {
		t.Fatalf("first Save should queue cleanly, got %v", err)
	}
	var serr error
	deadline := time.Now().Add(5 * time.Second)
	for serr == nil {
		if time.Now().After(deadline) {
			t.Fatal("write failure never surfaced through Save")
		}
		time.Sleep(time.Millisecond)
		serr = w.Save(snapAt(2))
	}
	if cerr := w.Close(); cerr == nil {
		t.Fatal("Close returned nil after a write failure")
	}
}

// Ready turns false while a write is pending and after a write until the
// gap elapses.
func TestWriterReady(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ckpt")
	plan, saved := collectSaves(path, time.Hour)
	w := NewWriter(plan)
	defer w.Close()
	if !w.Ready() {
		t.Fatal("fresh writer not ready")
	}
	if err := w.Save(snapAt(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(saved()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first save never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if w.Ready() {
		t.Fatal("writer ready right after a write despite an hour-long gap")
	}
}
