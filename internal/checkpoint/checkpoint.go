// Package checkpoint implements the durable snapshot format that lets a
// simulation survive crashes: a versioned, CRC-protected, self-describing
// capture of everything a synchronous engine needs to continue from a
// quiescent point — node states, pending events, wide-plane lane state,
// per-worker counters and the step cursor — plus a content digest binding
// the snapshot to one (netlist, options) pair. Writes are atomic
// (temp + fsync + rename + directory fsync) so a crash mid-save leaves the
// previous snapshot intact; reads verify length and checksum before
// decoding so corruption fails loudly with a typed error instead of
// resuming from garbage.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"parsim/internal/logic"
	"parsim/internal/stats"
)

// Version is the snapshot format version. Bump on any wire change; Load
// rejects other versions.
const Version = 1

// magic identifies a parsim checkpoint file.
var magic = [4]byte{'P', 'S', 'C', 'K'}

// headerSize is magic + version(u32) + payload length(u64) + CRC32(u32).
const headerSize = 4 + 4 + 8 + 4

// maxPayload bounds the decoded payload so a corrupted length field cannot
// trigger a huge allocation before the CRC check gets a chance to run.
const maxPayload = 1 << 32

// ErrUnsupported is returned when checkpointing or resume is requested on
// an engine without quiescent-point snapshot support.
var ErrUnsupported = errors.New("checkpoint: engine does not support checkpoint/resume")

// CorruptError reports a snapshot file that failed structural validation:
// truncation, bad magic, unknown version, checksum mismatch or an
// undecodable payload. A corrupt snapshot is never silently resumed.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s: corrupt snapshot: %s", e.Path, e.Reason)
}

// MismatchError reports a structurally valid snapshot that does not belong
// to the run being resumed — different netlist, options or engine.
type MismatchError struct {
	Path  string
	Field string
	Want  string
	Got   string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: %s: %s mismatch: snapshot has %s, run has %s",
		e.Path, e.Field, e.Got, e.Want)
}

// Plan tells an engine where and how often to snapshot. The zero value
// disables checkpointing.
type Plan struct {
	Path   string           // snapshot file; written atomically in place
	Every  int64            // capture when step % Every == 0 (at quiescent points)
	Gap    time.Duration    // min spacing between durable writes (0: DefaultGap)
	Engine string           // canonical engine name stamped into snapshots
	Digest [32]byte         // content digest binding snapshots to this run
	OnSave func(step int64) // optional notification after each durable save
}

// Enabled reports whether the plan asks for periodic snapshots.
func (p Plan) Enabled() bool { return p.Path != "" && p.Every > 0 }

// RawValue is the wire form of a logic.Value: its three bit planes and
// width. Unpack validates canonical form, so a tampered snapshot cannot
// introduce values that break the logic package's invariants.
type RawValue struct {
	B, U, Z uint64
	W       uint8
}

// PackValue converts a logic.Value to wire form.
func PackValue(v logic.Value) RawValue {
	b, u, z, w := v.Raw()
	return RawValue{B: b, U: u, Z: z, W: w}
}

// Unpack rebuilds the logic.Value, rejecting non-canonical planes.
func (rv RawValue) Unpack() (logic.Value, error) {
	return logic.FromRaw(rv.B, rv.U, rv.Z, rv.W)
}

// PackValues converts a value slice to wire form.
func PackValues(vs []logic.Value) []RawValue {
	out := make([]RawValue, len(vs))
	for i, v := range vs {
		out[i] = PackValue(v)
	}
	return out
}

// UnpackValues rebuilds a value slice, failing on the first non-canonical
// entry.
func UnpackValues(rvs []RawValue) ([]logic.Value, error) {
	out := make([]logic.Value, len(rvs))
	for i, rv := range rvs {
		v, err := rv.Unpack()
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// Event is one pending event-queue entry in pop order.
type Event struct {
	T     int64
	Node  int32
	Value RawValue
}

// TraceChange is one recorded probe change, in (time, node) order.
type TraceChange struct {
	Node  int32
	T     int64
	Value RawValue
}

// PlaneState is the wire form of one logic.WidePlane: the value and
// undefined words of every lane.
type PlaneState struct {
	V, U []uint64
}

// KernelState carries the private state of one compiled vector kernel —
// plane rows such as a flip-flop's previous clock and held output, or a
// RAM's memory array — plus per-lane scalar element state for kernels that
// fall back to scalar evaluation.
type KernelState struct {
	Planes []PlaneState
	Lanes  [][]RawValue
}

// RunCounters is the gob-safe subset of stats.Run a fault-simulation
// snapshot accumulates across completed passes (the fields mergeRun sums).
type RunCounters struct {
	TimeSteps   int64
	NodeUpdates int64
	Evals       int64
	ModelCalls  int64
	EventsUsed  int64
	Wall        time.Duration
	PerWorker   []stats.WorkerCounters
}

// FaultState captures a concurrent fault simulation between passes and, via
// the embedded pass snapshot fields of the owning Snapshot, mid-pass.
type FaultState struct {
	Pass     int                 // index of the pass the snapshot was taken in
	Ran      int                 // passes fully completed before this one
	Statuses []stats.FaultStatus // full per-fault table (all passes)
	Det      [][]uint64          // current pass per-worker detection masks
	First    [][]int64           // current pass per-worker first-detection steps
	Acc      RunCounters         // counters merged from completed passes
}

// Snapshot is everything needed to continue a run from a quiescent point.
// Engines populate the sections they use and ignore the rest.
type Snapshot struct {
	Engine string   // canonical engine name that wrote the snapshot
	Digest [32]byte // content digest of (netlist, run options)

	Step      int64 // next step/time to execute on resume
	TimeSteps int64 // res.TimeSteps accumulated so far (event-driven cursor engines)

	Workers []stats.WorkerCounters // cumulative per-worker counters

	// Sequential engine: node values, projected values, per-element state
	// and the pending event queue.
	Values    []RawValue
	Projected []RawValue
	ElemState [][]RawValue
	Events    []Event
	QueueCur  int64
	GenNext   []int64

	// Compiled/vector engines: node values (Values above for compiled) or
	// node planes, plus per-kernel closure state.
	Planes  []PlaneState
	Kernels []KernelState

	// Probe history replay for bit-identical VCD output.
	HasTrace bool
	Trace    []TraceChange

	// Fault simulation progress, nil outside fault-sim runs.
	Fault *FaultState
}

// encode serialises the snapshot into the framed wire format.
func encode(s *Snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	buf := make([]byte, headerSize+payload.Len())
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], Version)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	copy(buf[headerSize:], payload.Bytes())
	return buf, nil
}

// decode parses and validates a framed snapshot read from path (the path is
// only used in error messages).
func decode(path string, data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("file too short (%d bytes)", len(data))}
	}
	if !bytes.Equal(data[0:4], magic[:]) {
		return nil, &CorruptError{Path: path, Reason: "bad magic (not a parsim checkpoint)"}
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("unsupported format version %d (have %d)", v, Version)}
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n > maxPayload || int(n) != len(data)-headerSize {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("payload length %d does not match file size %d", n, len(data))}
	}
	payload := data[headerSize:]
	want := binary.LittleEndian.Uint32(data[16:20])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("undecodable payload: %v", err)}
	}
	return &s, nil
}

// Save writes the snapshot to path atomically: the bytes land in a
// temporary file in the same directory, are fsynced, renamed over path, and
// the directory is fsynced so the rename itself is durable. A crash at any
// point leaves either the old snapshot or the new one, never a torn file.
func Save(path string, s *Snapshot) (err error) {
	data, err := encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: save: sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: save: close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Load reads and validates a snapshot. Errors are typed: *CorruptError for
// any structural damage, wrapped os errors for I/O failures.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, maxPayload+headerSize+1))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load: %w", err)
	}
	return decode(path, data)
}

// Verify checks that a loaded snapshot belongs to the run described by the
// plan: same engine, same content digest.
func Verify(path string, s *Snapshot, engine string, digest [32]byte) error {
	if s.Engine != engine {
		return &MismatchError{Path: path, Field: "engine", Want: engine, Got: s.Engine}
	}
	if s.Digest != digest {
		return &MismatchError{
			Path:  path,
			Field: "content digest",
			Want:  fmt.Sprintf("%x", digest[:8]),
			Got:   fmt.Sprintf("%x", s.Digest[:8]),
		}
	}
	return nil
}
