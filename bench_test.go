package parsim

// One testing.B benchmark per figure and quantitative claim in the paper's
// evaluation, timing the real parallel simulators on the paper's circuits.
// Worker counts sweep 1..NumCPU; `go run ./cmd/figures -mode model` extends
// the curves to the paper's 16 virtual processors. EXPERIMENTS.md records
// paper-vs-measured for each.

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// workerCounts returns the benchmark sweep: 1, 2, 4, ... up to NumCPU.
func workerCounts() []int {
	var ps []int
	for p := 1; p <= runtime.NumCPU(); p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

// benchSim runs one simulator configuration repeatedly, reporting
// events-per-second as the figure-of-merit (the paper's "pure simulation
// time" for a fixed workload).
func benchSim(b *testing.B, c *Circuit, opts Options) {
	b.Helper()
	var updates int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(c, opts)
		if err != nil {
			b.Fatal(err)
		}
		updates = res.Stats.NodeUpdates
	}
	b.ReportMetric(float64(updates)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// Figure 1: the synchronous event-driven algorithm on the four benchmark
// circuits.
func BenchmarkFig1EventDriven(b *testing.B) {
	mult := DefaultMultiplier()
	cpu := DefaultCPU()
	circuits := []struct {
		name    string
		c       *Circuit
		horizon Time
	}{
		{"mult16-gate", BenchGateMultiplier(mult), mult.InPeriod * 2},
		{"mult16-func", BenchFuncMultiplier(mult), mult.InPeriod * 4},
		{"inverter-array", BenchInverterArray(DefaultInverterArray()), 128},
		{"microprocessor", BenchCPU(cpu), CPUHorizon(cpu, 16)},
	}
	for _, tc := range circuits {
		for _, p := range workerCounts() {
			b.Run(fmt.Sprintf("%s/P%d", tc.name, p), func(b *testing.B) {
				benchSim(b, tc.c, Options{
					Algorithm: EventDriven, Workers: p, Horizon: tc.horizon, CostSpin: 100,
				})
			})
		}
	}
}

// Figure 2: event availability controls event-driven scaling.
func BenchmarkFig2EventsPerTick(b *testing.B) {
	for _, active := range []int{32, 16, 8, 4} {
		cfg := DefaultInverterArray()
		cfg.ActiveRows = active
		c := BenchInverterArray(cfg)
		for _, p := range workerCounts() {
			b.Run(fmt.Sprintf("ev%d/P%d", active*16, p), func(b *testing.B) {
				benchSim(b, c, Options{
					Algorithm: EventDriven, Workers: p, Horizon: 128, CostSpin: 100,
				})
			})
		}
	}
}

// Figure 3: compiled mode evaluates everything every step.
func BenchmarkFig3Compiled(b *testing.B) {
	mult := DefaultMultiplier()
	circuits := []struct {
		name string
		c    *Circuit
	}{
		{"inverter-array", BenchInverterArray(DefaultInverterArray())},
		{"mult16-gate", BenchGateMultiplier(mult)},
		{"mult16-func", BenchFuncMultiplier(mult)},
	}
	for _, tc := range circuits {
		for _, p := range workerCounts() {
			b.Run(fmt.Sprintf("%s/P%d", tc.name, p), func(b *testing.B) {
				benchSim(b, tc.c, Options{
					Algorithm: Compiled, Workers: p, Horizon: 64, CostSpin: 100,
				})
			})
		}
	}
}

// Figure 4: the asynchronous algorithm on the paper's three circuits.
func BenchmarkFig4Async(b *testing.B) {
	mult := DefaultMultiplier()
	circuits := []struct {
		name    string
		c       *Circuit
		horizon Time
	}{
		{"inverter-array", BenchInverterArray(DefaultInverterArray()), 128},
		{"mult16-gate", BenchGateMultiplier(mult), mult.InPeriod * 2},
		{"mult16-func", BenchFuncMultiplier(mult), mult.InPeriod * 4},
	}
	for _, tc := range circuits {
		for _, p := range workerCounts() {
			b.Run(fmt.Sprintf("%s/P%d", tc.name, p), func(b *testing.B) {
				benchSim(b, tc.c, Options{
					Algorithm: Async, Workers: p, Horizon: tc.horizon, CostSpin: 100,
				})
			})
		}
	}
}

// Figure 5: head-to-head on the inverter array.
func BenchmarkFig5Comparison(b *testing.B) {
	c := BenchInverterArray(DefaultInverterArray())
	for _, alg := range []Algorithm{EventDriven, Async} {
		for _, p := range workerCounts() {
			b.Run(fmt.Sprintf("%v/P%d", alg, p), func(b *testing.B) {
				benchSim(b, c, Options{
					Algorithm: alg, Workers: p, Horizon: 128, CostSpin: 100,
				})
			})
		}
	}
}

// T1: uniprocessor asynchronous vs event-driven (paper: async 1-3x faster).
func BenchmarkT1Uniprocessor(b *testing.B) {
	mult := DefaultMultiplier()
	circuits := []struct {
		name    string
		c       *Circuit
		horizon Time
	}{
		{"inverter-array", BenchInverterArray(DefaultInverterArray()), 128},
		{"mult16-func", BenchFuncMultiplier(mult), mult.InPeriod * 4},
	}
	for _, tc := range circuits {
		for _, alg := range []Algorithm{Sequential, Async} {
			b.Run(fmt.Sprintf("%s/%v", tc.name, alg), func(b *testing.B) {
				benchSim(b, tc.c, Options{
					Algorithm: alg, Workers: 1, Horizon: tc.horizon, CostSpin: 100,
				})
			})
		}
	}
}

// T2: the work-distribution ablation (paper: central queue capped at ~2x;
// stealing worth 15-20% utilisation).
func BenchmarkT2Ablation(b *testing.B) {
	c := BenchInverterArray(DefaultInverterArray())
	p := runtime.NumCPU()
	variants := []struct {
		name string
		opts Options
	}{
		{"central", Options{Algorithm: EventDriven, CentralQueue: true}},
		{"no-steal", Options{Algorithm: EventDriven, NoSteal: true}},
		{"distributed", Options{Algorithm: EventDriven}},
	}
	for _, v := range variants {
		opts := v.opts
		opts.Workers = p
		opts.Horizon = 128
		opts.CostSpin = 100
		b.Run(v.name, func(b *testing.B) { benchSim(b, c, opts) })
	}
}

// Extension: the distributed-memory (message-passing) asynchronous variant
// head-to-head with the shared-memory one on the inverter array.
func BenchmarkExtensionDistributed(b *testing.B) {
	c := BenchInverterArray(DefaultInverterArray())
	for _, alg := range []Algorithm{Async, DistAsync} {
		for _, p := range workerCounts() {
			b.Run(fmt.Sprintf("%v/P%d", alg, p), func(b *testing.B) {
				benchSim(b, c, Options{
					Algorithm: alg, Workers: p, Horizon: 128, CostSpin: 100,
				})
			})
		}
	}
}

// Baseline: the rollback-based optimistic simulator the paper argues
// against, head-to-head with the conservative asynchronous algorithm.
func BenchmarkBaselineTimeWarp(b *testing.B) {
	mult := DefaultMultiplier()
	circuits := []struct {
		name    string
		c       *Circuit
		horizon Time
	}{
		{"inverter-array", BenchInverterArray(DefaultInverterArray()), 128},
		{"mult16-gate", BenchGateMultiplier(mult), mult.InPeriod},
	}
	for _, tc := range circuits {
		for _, alg := range []Algorithm{Async, TimeWarp} {
			b.Run(fmt.Sprintf("%s/%v", tc.name, alg), func(b *testing.B) {
				benchSim(b, tc.c, Options{
					Algorithm: alg, Workers: runtime.NumCPU(), Horizon: tc.horizon, CostSpin: 100,
				})
			})
		}
	}
}

// T4: the asynchronous algorithm's feedback worst case.
func BenchmarkT4FeedbackChain(b *testing.B) {
	ring := BenchFeedbackChain(31)
	for _, p := range workerCounts() {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			benchSim(b, ring, Options{
				Algorithm: Async, Workers: p, Horizon: 2000, CostSpin: 100,
			})
		})
	}
}

// Ablation: compiled-mode partitioning strategies on the cost-skewed
// functional multiplier (DESIGN.md: load balancing is the compiled mode's
// weak point at the functional level).
func BenchmarkAblationPartitioners(b *testing.B) {
	c := BenchFuncMultiplier(DefaultMultiplier())
	for _, s := range []Strategy{RoundRobin, Blocks, CostLPT} {
		b.Run(s.String(), func(b *testing.B) {
			benchSim(b, c, Options{
				Algorithm: Compiled, Workers: runtime.NumCPU(), Horizon: 64,
				CostSpin: 100, Strategy: s,
			})
		})
	}
}

// Ablation: clocked-element lookahead on the feedback-heavy CPU (DESIGN.md
// extension; disabling it restores the raw valid-time creep).
func BenchmarkAblationLookahead(b *testing.B) {
	cpu := DefaultCPU()
	c := BenchCPU(cpu)
	horizon := CPUHorizon(cpu, 10)
	for _, v := range []struct {
		name string
		off  bool
	}{{"lookahead", false}, {"no-lookahead", true}} {
		b.Run(v.name, func(b *testing.B) {
			benchSim(b, c, Options{
				Algorithm: Async, Workers: runtime.NumCPU(), Horizon: horizon,
				NoLookahead: v.off,
			})
		})
	}
	b.Run("gate-lookahead", func(b *testing.B) {
		benchSim(b, c, Options{
			Algorithm: Async, Workers: runtime.NumCPU(), Horizon: horizon,
			GateLookahead: true,
		})
	})
}

// Supervision overhead: the stall watchdog on vs off on the compiled
// engine — the tightest per-step loop in the repo and therefore the
// worst case for any added supervision cost. BENCH_guard.json records
// the measured delta (required < 2%).
func BenchmarkGuardOverhead(b *testing.B) {
	c := BenchInverterArray(DefaultInverterArray())
	for _, v := range []struct {
		name     string
		watchdog time.Duration
	}{{"watchdog-off", 0}, {"watchdog-1s", time.Second}} {
		b.Run(v.name, func(b *testing.B) {
			benchSim(b, c, Options{
				Algorithm: Compiled, Workers: runtime.NumCPU(), Horizon: 128,
				Watchdog: v.watchdog,
			})
		})
	}
}

// Ablation: synthetic evaluation cost on vs off — how much of the parallel
// benefit depends on per-element work dominating scheduling overhead.
func BenchmarkAblationSpinScale(b *testing.B) {
	c := BenchInverterArray(DefaultInverterArray())
	for _, spin := range []int64{0, 30, 300} {
		b.Run(fmt.Sprintf("spin%d", spin), func(b *testing.B) {
			benchSim(b, c, Options{
				Algorithm: Async, Workers: runtime.NumCPU(), Horizon: 128, CostSpin: spin,
			})
		})
	}
}
