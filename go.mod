module parsim

go 1.22
