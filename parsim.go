// Package parsim is a parallel logic simulator for general-purpose
// shared-memory machines, reproducing Soule & Blank, "Parallel Logic
// Simulation on General Purpose Machines" (DAC 1988).
//
// Three parallel simulation algorithms are provided behind one API:
//
//   - EventDriven: the synchronous parallel event-driven algorithm —
//     classic update/evaluate phases with distributed per-worker queues,
//     round-robin scheduling, end-of-phase work stealing, and a barrier at
//     every time step;
//   - Compiled: the parallel unit-delay compiled-mode algorithm — every
//     element evaluated every step from a static partition;
//   - Async: the paper's primary contribution, a totally asynchronous
//     algorithm with no locks and no barriers: per-node event histories
//     with incrementally advancing valid-times (so the Chandy-Misra
//     deadlock never forms and no Time-Warp rollback is needed), lock-free
//     single-reader/single-writer work queues, and asynchronous reclamation
//     of consumed events;
//
// plus the Sequential reference simulator every parallel run is
// cross-checked against.
//
// Circuits mix representation levels: two-input gates, RTL registers and
// muxes, and functional blocks (wide adders, multipliers, ALUs, memories)
// connected by four-state (0/1/X/Z) nodes up to 64 bits wide. Build them
// with a Builder, load them from netlist files, or generate the paper's
// benchmark circuits from the Bench* helpers.
//
// # Quick start
//
//	b := parsim.NewBuilder("blinker")
//	clk := b.Bit("clk")
//	q := b.Bit("q")
//	b.Clock("osc", clk, 10, 0, 0)
//	b.Gate(parsim.Not, "inv", 1, q, clk)
//	c, err := b.Build()
//	...
//	res, err := parsim.Simulate(c, parsim.Options{
//		Algorithm: parsim.Async,
//		Workers:   runtime.NumCPU(),
//		Horizon:   1000,
//	})
package parsim

import (
	"context"
	"time"

	"parsim/internal/analyze"
	"parsim/internal/circuit"
	"parsim/internal/compiled"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"

	// Each simulator package self-registers its engine(s) with
	// internal/engine from init; these imports populate the registry that
	// Simulate dispatches through.
	_ "parsim/internal/auto"
	_ "parsim/internal/codegen"
	_ "parsim/internal/core"
	_ "parsim/internal/dist"
	_ "parsim/internal/parevent"
	_ "parsim/internal/seq"
	_ "parsim/internal/timewarp"
	_ "parsim/internal/vector"
)

// Core value and netlist types, re-exported from the implementation
// packages so user code needs only this import.
type (
	// Value is a four-state bus value up to 64 bits wide.
	Value = logic.Value
	// State is a single wire state: L, H, X or Z.
	State = logic.State
	// Time is a simulation timestamp in ticks.
	Time = circuit.Time
	// Circuit is a validated, immutable netlist.
	Circuit = circuit.Circuit
	// Builder assembles circuits programmatically.
	Builder = circuit.Builder
	// Kind identifies an element type.
	Kind = circuit.Kind
	// Params carries kind-specific element configuration.
	Params = circuit.Params
	// NodeID identifies a node within a circuit.
	NodeID = circuit.NodeID
	// ElemID identifies an element within a circuit.
	ElemID = circuit.ElemID
	// Probe observes node changes during simulation.
	Probe = trace.Probe
	// Recorder is a Probe that stores full node histories.
	Recorder = trace.Recorder
	// Change is one recorded node transition.
	Change = trace.Change
	// RunStats summarises a simulation run.
	RunStats = stats.Run
	// WorkerCounters is the uniform per-worker counter row every algorithm
	// reports in RunStats.PerWorker.
	WorkerCounters = stats.WorkerCounters
	// FaultCoverage summarises a concurrent stuck-at fault-simulation run.
	FaultCoverage = stats.FaultCoverage
	// FaultStatus is one fault's detection row inside a FaultCoverage.
	FaultStatus = stats.FaultStatus
	// Strategy selects a compiled-mode partitioner.
	Strategy = partition.Strategy
)

// Wire states.
const (
	L = logic.L
	H = logic.H
	X = logic.X
	Z = logic.Z
)

// MaxLanes is the widest lane count a Vector run accepts: 64 lanes per
// machine word times the widest supported plane.
const MaxLanes = logic.MaxWideLanes

// Element kinds, re-exported with friendlier names.
const (
	Buf    = circuit.KindBuf
	Not    = circuit.KindNot
	And    = circuit.KindAnd
	Or     = circuit.KindOr
	Nand   = circuit.KindNand
	Nor    = circuit.KindNor
	Xor    = circuit.KindXor
	Xnor   = circuit.KindXnor
	Mux2   = circuit.KindMux2
	DFF    = circuit.KindDFF
	DFFR   = circuit.KindDFFR
	Latch  = circuit.KindLatch
	Tri    = circuit.KindTri
	Res2   = circuit.KindRes2
	Const  = circuit.KindConst
	Add    = circuit.KindAdd
	AddC   = circuit.KindAddC
	Sub    = circuit.KindSub
	MulK   = circuit.KindMul
	Eq     = circuit.KindEq
	LtU    = circuit.KindLtU
	Slice  = circuit.KindSlice
	Ext    = circuit.KindExt
	Concat = circuit.KindConcat
	ShlK   = circuit.KindShlK
	ShrK   = circuit.KindShrK
	RedAnd = circuit.KindRedAnd
	RedOr  = circuit.KindRedOr
	RedXor = circuit.KindRedXor
	Alu    = circuit.KindAlu
	Rom    = circuit.KindRom
	Ram    = circuit.KindRam
	Clock  = circuit.KindClock
	Wave   = circuit.KindWave
	Rand   = circuit.KindRand
	Gray   = circuit.KindGray
)

// Partition strategies for compiled mode.
const (
	RoundRobin = partition.RoundRobin
	Blocks     = partition.Blocks
	CostLPT    = partition.CostLPT
)

// Value constructors.
var (
	// V returns a fully known value of the given width.
	V = logic.V
	// AllX returns a value with every bit unknown.
	AllX = logic.AllX
	// AllZ returns a value with every bit high-impedance.
	AllZ = logic.AllZ
	// ParseValue parses a Verilog-style literal such as "8'hff".
	ParseValue = logic.ParseValue
	// NewBuilder starts a new circuit.
	NewBuilder = circuit.NewBuilder
	// NewRecorder records every node change.
	NewRecorder = trace.NewRecorder
	// NewRecorderFor records only the listed nodes.
	NewRecorderFor = trace.NewRecorderFor
	// HistoryDiff compares two recorders, returning "" when identical.
	HistoryDiff = trace.Diff
)

// Algorithm selects a simulation algorithm.
type Algorithm int

// The four simulators.
const (
	// Sequential is the uniprocessor event-driven reference algorithm.
	Sequential Algorithm = iota
	// EventDriven is the synchronous parallel event-driven algorithm.
	EventDriven
	// Compiled is the parallel unit-delay compiled-mode algorithm. It
	// ignores element delays (everything behaves unit-delay), so its
	// histories match the others only on unit-delay circuits.
	Compiled
	// Async is the lock-free, barrier-free asynchronous algorithm — the
	// paper's primary contribution.
	Async
	// DistAsync is the asynchronous algorithm restructured for distributed
	// memory (the paper's stated future work, "porting these algorithms to
	// a hypercube architecture"): partitioned workers exchanging event
	// messages over channels, with Safra token-ring termination detection.
	DistAsync
	// TimeWarp is the rollback-based optimistic baseline the paper argues
	// against (Arnold's simulator, built on Jefferson's Virtual Time):
	// elements execute speculatively; stragglers force state restoration
	// and anti-message cancellation. Result.Rollbacks and Result.PeakLog
	// quantify the paper's two criticisms.
	TimeWarp
	// ChandyMisra is the conservative baseline the paper refines: node
	// valid-times stay frozen while the simulation runs, so it repeatedly
	// deadlocks and a global clock-value update restarts it. The paper's
	// contribution is exactly the incremental valid-time advancement that
	// makes these deadlocks impossible; Result.Rounds counts them.
	ChandyMisra
	// Vector is the bit-parallel batched compiled-mode algorithm: N
	// independent stimulus lanes advance through the circuit simultaneously,
	// 64 lanes per machine word and as many words per node plane as the run
	// requests (up to MaxLanes), with every element compiled to a word-wide
	// plane-op kernel looped over the plane words. Lane 0 replays the scalar
	// stimulus exactly; Options.Lanes/LaneStride/ProbeLane control the
	// batch, and Options.FaultSim turns the lane axis into a concurrent
	// stuck-at fault simulator.
	Vector
	// JIT is the statically compiled ("codegen") algorithm: the circuit's
	// levelized schedule is lowered once, at run start, into per-level
	// batches of branch-free word kernels over a struct-of-arrays state
	// layout — fused 1/2-input gate loops with no per-element dispatch,
	// devirtualized plane-op kernels for everything else — executed with
	// one barrier per level across the workers. Semantically it is the
	// Compiled algorithm (unit-delay, every element every step) run
	// through a compiler instead of an interpreter; Options.Lanes widens
	// it to N stimulus lanes exactly as Vector (default 1).
	JIT
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Sequential:
		return "sequential"
	case EventDriven:
		return "event-driven"
	case Compiled:
		return "compiled"
	case Async:
		return "asynchronous"
	case DistAsync:
		return "distributed-async"
	case TimeWarp:
		return "time-warp"
	case ChandyMisra:
		return "chandy-misra"
	case Vector:
		return "vector"
	case JIT:
		return "jit"
	}
	return "unknown"
}

// Options configures Simulate.
type Options struct {
	Algorithm Algorithm
	// Engine, when non-empty, selects the engine by registry name and
	// overrides Algorithm. This is how names without an Algorithm constant
	// are reached — above all "auto", which profiles the circuit
	// statically, ranks every engine through the cost model, and runs the
	// predicted winner (Result.Selected records the decision; Workers acts
	// as a budget the winner may undershoot but never exceed).
	Engine  string
	Horizon Time  // simulate t in [0, Horizon); required
	Workers int   // parallel workers; default 1
	Probe   Probe // optional concurrency-safe observer
	// CostSpin > 0 burns CostSpin x the element's Cost of synthetic work
	// per evaluation, restoring the paper's gate-vs-functional evaluation
	// cost spread for benchmarking.
	CostSpin int64
	// Strategy selects the compiled-mode static partitioner.
	Strategy Strategy
	// NoSteal disables event-driven end-of-phase work stealing;
	// CentralQueue reverts to the paper's initial contended single-queue
	// design. Both are ablations of the EventDriven algorithm.
	NoSteal      bool
	CentralQueue bool
	// NoLookahead disables the Async algorithm's clocked-element
	// lookahead (ablation; results are identical, evaluation counts grow
	// on feedback-heavy circuits).
	NoLookahead bool
	// GateLookahead enables the Async algorithm's controlling-value
	// optimisation: events behind a pinned AND/NAND/OR/NOR input are
	// consumed without evaluating the gate model.
	GateLookahead bool
	// Lanes is the number of independent stimulus vectors a Vector or JIT
	// run simulates at once (1..MaxLanes; 0 defaults to 64 for Vector and
	// 1 for JIT — larger counts widen every node plane to ceil(Lanes/64)
	// words).
	// LaneStride offsets rand/gray generator seeds per lane (lane k runs
	// with Seed + k*LaneStride; 0 defaults to 1), and ProbeLane selects
	// which lane feeds Probe and Result.Final (default 0, the lane whose
	// stimulus — and therefore whose history — is bit-identical to a
	// scalar run). The scalar algorithms ignore all three.
	Lanes      int
	LaneStride int64
	ProbeLane  int
	// FaultSim switches a Vector run to concurrent stuck-at fault
	// simulation: lane 0 simulates the good machine, every other lane
	// carries the same stimulus plus one injected fault from the circuit's
	// collapsed single stuck-at list, and a fault is detected when its
	// lane's value at a sink node diverges from lane 0 with both known.
	// Fault lists larger than Lanes-1 chunk into multiple passes;
	// FaultMaxPasses caps the chunk loop (0 = run the whole list) and
	// FaultStatuses includes the per-fault site/step rows in the coverage
	// report. Only the Vector algorithm accepts FaultSim.
	FaultSim       bool
	FaultMaxPasses int
	FaultStatuses  bool
	// Lint selects the pre-flight static analysis applied before any
	// algorithm runs: LintOff (default), LintWarn (refuse circuits with
	// Error diagnostics such as zero-delay combinational cycles), or
	// LintStrict (additionally refuse Warning diagnostics). See Analyze
	// for the full diagnostic catalogue.
	Lint LintMode
	// Watchdog enables the runtime stall watchdog: a run whose progress
	// stays flat for this long is aborted with ErrStalled and a
	// per-worker diagnostic dump instead of hanging. 0 disables it.
	Watchdog time.Duration
	// Fallback transparently retries a run on the Sequential reference
	// engine when the selected algorithm panics or stalls. The retried
	// Result carries Degraded=true and the original error (wrapped in a
	// fallback error recording the attempt count) in Fault.
	Fallback bool
	// FallbackRetries is the number of fallback attempts (0 defaults to
	// 1); FallbackDelay is the base of the capped exponential backoff
	// applied between attempts (0 retries immediately).
	FallbackRetries int
	FallbackDelay   time.Duration
	// Checkpoint names a snapshot file the run rewrites atomically every
	// CheckpointEvery time steps (0 defaults to 256), at the quiescent
	// per-step barrier. Only the synchronous algorithms (Sequential,
	// Compiled, Vector — including FaultSim — and JIT) support
	// checkpointing.
	Checkpoint      string
	CheckpointEvery int64
	// ResumeFrom names a snapshot to continue from instead of starting at
	// t=0. The snapshot must match this run's netlist, algorithm and
	// options (verified by content digest); the resumed run's final
	// states, lane finals and probe history are bit-identical to an
	// uninterrupted run's. Result.Resumed reports that the path was taken.
	ResumeFrom string
	// Chaos injects faults (induced panics, delays, dropped wakeups)
	// into the run, for testing the supervision layer. Leave nil in
	// production.
	Chaos *ChaosProbe
}

// Result is the outcome of a simulation.
type Result struct {
	Stats RunStats
	// Final holds each node's value at the horizon, indexed by NodeID.
	// For a Vector run this is lane ProbeLane's view.
	Final []Value
	// LaneFinal holds every lane's final node values (Vector and JIT
	// only): LaneFinal[k][n] is node n at the horizon as lane k saw it.
	LaneFinal [][]Value
	// FaultCoverage reports concurrent fault-simulation results
	// (Vector with Options.FaultSim only).
	FaultCoverage *FaultCoverage
	// Messages counts inter-worker messages (DistAsync only).
	Messages int64
	// Rollbacks, Cancelled and PeakLog quantify optimistic execution
	// (TimeWarp only): rollback episodes, anti-message annihilations, and
	// the peak saved-state footprint.
	Rollbacks int64
	Cancelled int64
	PeakLog   int64
	// Rounds counts Chandy-Misra deadlock recoveries (ChandyMisra only).
	Rounds int64
	// Degraded marks a result produced by the sequential fallback after
	// the requested algorithm faulted or stalled (Options.Fallback);
	// Fault holds the original algorithm's error.
	Degraded bool
	Fault    error
	// Resumed marks a run continued from an Options.ResumeFrom snapshot
	// rather than simulated from t=0.
	Resumed bool
	// Selected records an engine=auto run's decision: the winning engine
	// and configuration, the per-engine ranking, and the static circuit
	// profile that justified it. Nil for directly selected algorithms.
	Selected *Selection
}

// Auto-selection surface, re-exported from the implementation packages.
type (
	// Selection is the decision record of an engine=auto run.
	Selection = engine.Selection
	// SelectionChoice is one ranked entry inside a Selection.
	SelectionChoice = engine.Choice
	// CircuitProfile is the static structural fingerprint computed by
	// Profile and embedded in every Selection.
	CircuitProfile = analyze.CircuitProfile
)

// Profile computes a circuit's static structural fingerprint — levelized
// depth and widths, fanout histogram, sequential/combinational mix,
// activity estimate, feedback census, partition cut quality — without
// running any simulation. This is the evidence engine=auto selects on.
func Profile(c *Circuit) *CircuitProfile { return analyze.Profile(c) }

// Simulate runs the selected algorithm over [0, Horizon). All algorithms
// produce identical node histories (Compiled on unit-delay circuits); they
// differ in how the work is executed.
//
// A *Circuit must not be shared between concurrent Simulate (or
// SimulateContext) calls: the engines treat the circuit as their private
// working set for the duration of a run, and nothing in the API guarantees
// two runs touching one circuit do not race. To run the same netlist many
// times in parallel — as the parsimd daemon does — clone it per run with
// Circuit.Clone, which deep-copies everything mutable while sharing the
// immutable element-kind registry. TestConcurrentSimulateOnClones pins
// this contract under the race detector.
func Simulate(c *Circuit, opts Options) (*Result, error) {
	return SimulateContext(context.Background(), c, opts)
}

// SimulateContext is Simulate with cancellation: when ctx is cancelled (or
// its deadline passes) every worker of the selected algorithm stops within
// one scheduling quantum — a time step, a GVT round, or a queue poll — and
// the partial Result accumulated so far is returned together with
// ctx.Err().
//
// Dispatch goes through the engine registry: the Algorithm's name (its
// String) is the registry key, so this function, the CLIs, the figure
// harness and the benchmarks all resolve algorithms through one table.
func SimulateContext(ctx context.Context, c *Circuit, opts Options) (*Result, error) {
	var fallback engine.FallbackPolicy
	if opts.Fallback {
		fallback = engine.FallbackPolicy{
			Engine:     Sequential.String(),
			MaxRetries: opts.FallbackRetries,
			BaseDelay:  opts.FallbackDelay,
		}
	}
	name := opts.Engine
	if name == "" {
		name = opts.Algorithm.String()
	}
	rep, err := engine.Run(ctx, name, c, engine.Config{
		Workers:        opts.Workers,
		Horizon:        opts.Horizon,
		Probe:          opts.Probe,
		CostSpin:       opts.CostSpin,
		Strategy:       opts.Strategy,
		NoSteal:        opts.NoSteal,
		CentralQueue:   opts.CentralQueue,
		NoLookahead:    opts.NoLookahead,
		GateLookahead:  opts.GateLookahead,
		Lint:           opts.Lint,
		Watchdog:       opts.Watchdog,
		Fallback:       fallback,
		Chaos:          opts.Chaos,
		Lanes:          opts.Lanes,
		LaneStride:     opts.LaneStride,
		ProbeLane:      opts.ProbeLane,
		FaultSim:       opts.FaultSim,
		FaultMaxPasses: opts.FaultMaxPasses,
		FaultStatuses:  opts.FaultStatuses,
		Checkpoint: engine.CheckpointSpec{
			Path:       opts.Checkpoint,
			EverySteps: opts.CheckpointEvery,
		},
		ResumeFrom: opts.ResumeFrom,
	})
	if rep == nil {
		return nil, err
	}
	tot := rep.Run.Totals()
	return &Result{
		Stats:         rep.Run,
		Final:         rep.Final,
		LaneFinal:     rep.LaneFinal,
		FaultCoverage: rep.FaultCoverage,
		Messages:      tot.Messages,
		Rollbacks:     tot.Rollbacks,
		Cancelled:     tot.Cancelled,
		PeakLog:       rep.PeakLog,
		Rounds:        rep.Rounds,
		Degraded:      rep.Degraded,
		Fault:         rep.Fault,
		Resumed:       rep.Resumed,
		Selected:      rep.Selected,
	}, err
}

// IsUnitDelay reports whether every element has delay 1, the precondition
// for Compiled to agree with the other algorithms.
func IsUnitDelay(c *Circuit) bool { return compiled.UnitDelay(c) }

// Runtime-supervision surface, re-exported from internal/guard. A run
// supervised with Options.Watchdog ends in a *StallError (matching
// ErrStalled via errors.Is) when its progress flattens; a worker panic
// surfaces as a *WorkerFault instead of crashing the process.
type (
	// WorkerFault is a contained worker panic: which engine, which
	// worker, what it panicked with, and the goroutine stack.
	WorkerFault = guard.WorkerFault
	// StallError is a watchdog abort or deadlock self-report, carrying
	// the last progress value, any stuck nodes, and a per-worker
	// counter dump.
	StallError = guard.StallError
	// ChaosProbe injects faults for supervision tests (Options.Chaos).
	ChaosProbe = guard.ChaosProbe
)

// ErrStalled is the sentinel matched by errors.Is for every stall abort.
var ErrStalled = guard.ErrStalled

// IsRecoverable reports whether err is a fault the Fallback policy
// retries: a stall or a contained worker panic, but not a user
// cancellation or a configuration error.
func IsRecoverable(err error) bool { return guard.Recoverable(err) }

// Static-analysis surface, re-exported from internal/analyze.
type (
	// LintMode selects the pre-flight analysis level in Options.Lint.
	LintMode = engine.LintMode
	// AnalyzeReport is the structured outcome of Analyze: typed
	// diagnostics, levelization, and an optional partition-quality
	// summary.
	AnalyzeReport = analyze.Report
	// AnalyzeOptions configures Analyze.
	AnalyzeOptions = analyze.Options
	// Diag is one typed diagnostic inside an AnalyzeReport.
	Diag = analyze.Diag
)

// Pre-flight lint levels for Options.Lint.
const (
	LintOff    = engine.LintOff
	LintWarn   = engine.LintWarn
	LintStrict = engine.LintStrict
)

// Analyze statically checks a circuit: zero-delay combinational cycles
// (the livelock hazard the asynchronous algorithms cannot survive),
// floating inputs, drive conflicts, stimulus-free regions, combinational
// levelization and — when AnalyzeOptions.Workers > 0 — partition quality
// under the chosen strategy. Simulate enforces the same checks when
// Options.Lint is LintWarn or LintStrict.
func Analyze(c *Circuit, opts AnalyzeOptions) *AnalyzeReport {
	return analyze.Analyze(c, opts)
}
