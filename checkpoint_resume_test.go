package parsim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// vcdBytes renders rec as a VCD; resumed runs must reproduce these bytes
// exactly.
func vcdBytes(t *testing.T, c *Circuit, rec *Recorder, horizon Time) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteVCD(&buf, c, rec, horizon); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sameFinals(t *testing.T, label string, want, got []Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d final values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("%s: node %d final %v, want %v", label, i, got[i], want[i])
		}
	}
}

// testResumeBitIdentical runs base three ways — uninterrupted, checkpointed
// to completion, and resumed from the last periodic snapshot — and asserts
// the three runs are indistinguishable: final node states, lane finals, VCD
// bytes and work counters all match.
func testResumeBitIdentical(t *testing.T, c *Circuit, base Options) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	recA := NewRecorder()
	oA := base
	oA.Probe = recA
	resA, err := Simulate(c.Clone(), oA)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	vcdA := vcdBytes(t, c, recA, base.Horizon)

	recB := NewRecorder()
	oB := base
	oB.Probe = recB
	oB.Checkpoint = ckpt
	oB.CheckpointEvery = 64
	resB, err := Simulate(c.Clone(), oB)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if resB.Resumed {
		t.Error("checkpointed run reports Resumed")
	}
	sameFinals(t, "checkpointed vs reference", resA.Final, resB.Final)
	if !bytes.Equal(vcdA, vcdBytes(t, c, recB, base.Horizon)) {
		t.Error("checkpointing perturbed the VCD output")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	recC := NewRecorder()
	oC := base
	oC.Probe = recC
	oC.ResumeFrom = ckpt
	resC, err := Simulate(c.Clone(), oC)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !resC.Resumed {
		t.Error("resumed run does not report Resumed")
	}
	sameFinals(t, "resumed vs reference", resA.Final, resC.Final)
	if len(resA.LaneFinal) != len(resC.LaneFinal) {
		t.Fatalf("lane finals: %d lanes, want %d", len(resC.LaneFinal), len(resA.LaneFinal))
	}
	for l := range resA.LaneFinal {
		sameFinals(t, "lane final", resA.LaneFinal[l], resC.LaneFinal[l])
	}
	if !bytes.Equal(vcdA, vcdBytes(t, c, recC, base.Horizon)) {
		t.Error("resumed VCD differs from the uninterrupted run's")
	}
	ta, tc := resA.Stats.Totals(), resC.Stats.Totals()
	if ta.NodeUpdates != tc.NodeUpdates || ta.Evals != tc.Evals ||
		ta.BarrierWaits != tc.BarrierWaits || ta.EventsUsed != tc.EventsUsed {
		t.Errorf("resumed counters diverge: updates %d/%d evals %d/%d waits %d/%d events %d/%d",
			tc.NodeUpdates, ta.NodeUpdates, tc.Evals, ta.Evals,
			tc.BarrierWaits, ta.BarrierWaits, tc.EventsUsed, ta.EventsUsed)
	}
	if resA.Stats.TimeSteps != resC.Stats.TimeSteps {
		t.Errorf("resumed TimeSteps = %d, want %d", resC.Stats.TimeSteps, resA.Stats.TimeSteps)
	}
}

func TestResumeSequential(t *testing.T) {
	testResumeBitIdentical(t, RandomCircuit(5, 60),
		Options{Algorithm: Sequential, Horizon: 300})
}

func TestResumeSequentialUnitDelay(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(3, 60),
		Options{Algorithm: Sequential, Horizon: 300})
}

func TestResumeCompiled(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(3, 60),
		Options{Algorithm: Compiled, Horizon: 300, Workers: 3})
}

func TestResumeVector(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(7, 80),
		Options{Algorithm: Vector, Horizon: 300, Workers: 2, Lanes: 8})
}

func TestResumeVectorWide(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(11, 48),
		Options{Algorithm: Vector, Horizon: 300, Workers: 2, Lanes: 96, LaneStride: 3, ProbeLane: 65})
}

// TestResumeJIT: the codegen engine checkpoints at its quiescent per-step
// barrier and must resume bit-identically — finals, lane finals, VCD bytes
// and work counters all indistinguishable from an uninterrupted run.
func TestResumeJIT(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(7, 80),
		Options{Algorithm: JIT, Horizon: 300, Workers: 2, Lanes: 8})
}

// TestResumeJITScalar pins the scalar (lanes = 1) compile path, where the
// table kinds lower through per-lane scalar kernels whose state rides in
// the snapshot's Lanes rows rather than its bit-sliced planes.
func TestResumeJITScalar(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(3, 60),
		Options{Algorithm: JIT, Horizon: 300, Workers: 3})
}

// TestResumeJITWide is the multi-word-plane variant with an off-word probe
// lane, mirroring TestResumeVectorWide.
func TestResumeJITWide(t *testing.T) {
	testResumeBitIdentical(t, RandomUnitCircuit(11, 48),
		Options{Algorithm: JIT, Horizon: 300, Workers: 2, Lanes: 96, LaneStride: 3, ProbeLane: 65})
}

// TestResumeVectorFaultSim checkpoints a multi-pass concurrent fault
// simulation and resumes it from the last mid-pass snapshot: the stitched
// coverage table, final values and work counters must match an
// uninterrupted run's exactly.
func TestResumeVectorFaultSim(t *testing.T) {
	c := RandomUnitCircuit(9, 50)
	base := Options{Algorithm: Vector, Horizon: 200, Workers: 2, Lanes: 8,
		FaultSim: true, FaultStatuses: true}

	resA, err := Simulate(c.Clone(), base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if resA.FaultCoverage == nil || resA.FaultCoverage.Passes < 2 {
		t.Fatalf("want a multi-pass fault run, got %+v", resA.FaultCoverage)
	}

	ckpt := filepath.Join(t.TempDir(), "fault.ckpt")
	oB := base
	oB.Checkpoint = ckpt
	oB.CheckpointEvery = 64
	if _, err := Simulate(c.Clone(), oB); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	oC := base
	oC.ResumeFrom = ckpt
	resC, err := Simulate(c.Clone(), oC)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !resC.Resumed {
		t.Error("resumed run does not report Resumed")
	}
	sameFinals(t, "fault-sim resume", resA.Final, resC.Final)
	ca, cc := resA.FaultCoverage, resC.FaultCoverage
	if cc == nil {
		t.Fatal("resumed run has no fault coverage")
	}
	if ca.Total != cc.Total || ca.Detected != cc.Detected || ca.Passes != cc.Passes {
		t.Errorf("coverage diverges: total %d/%d detected %d/%d passes %d/%d",
			cc.Total, ca.Total, cc.Detected, ca.Detected, cc.Passes, ca.Passes)
	}
	if len(ca.Faults) != len(cc.Faults) {
		t.Fatalf("status rows: %d, want %d", len(cc.Faults), len(ca.Faults))
	}
	for i := range ca.Faults {
		if ca.Faults[i] != cc.Faults[i] {
			t.Errorf("fault %d status %+v, want %+v", i, cc.Faults[i], ca.Faults[i])
		}
	}
	ta, tc := resA.Stats.Totals(), resC.Stats.Totals()
	if ta.NodeUpdates != tc.NodeUpdates || ta.Evals != tc.Evals || ta.EventsUsed != tc.EventsUsed {
		t.Errorf("resumed counters diverge: updates %d/%d evals %d/%d",
			tc.NodeUpdates, ta.NodeUpdates, tc.Evals, ta.Evals)
	}
	if resA.Stats.TimeSteps != resC.Stats.TimeSteps {
		t.Errorf("resumed TimeSteps = %d, want %d", resC.Stats.TimeSteps, resA.Stats.TimeSteps)
	}
}

// TestResumeAfterCancel checkpoints a run, cancels it mid-flight (the
// engine writes a final snapshot at the stop boundary), then resumes and
// checks the stitched run matches an uninterrupted one.
func TestResumeAfterCancel(t *testing.T) {
	for _, alg := range []Algorithm{Sequential, Compiled} {
		c := RandomUnitCircuit(3, 60)
		base := Options{Algorithm: alg, Horizon: 2000, CostSpin: 50}
		if alg != Sequential {
			base.Workers = 2
		}

		recA := NewRecorder()
		oA := base
		oA.Probe = recA
		resA, err := Simulate(c.Clone(), oA)
		if err != nil {
			t.Fatalf("%v reference: %v", alg, err)
		}

		ckpt := filepath.Join(t.TempDir(), "cancel.ckpt")
		oB := base
		oB.Checkpoint = ckpt
		oB.CheckpointEvery = 100
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		_, err = SimulateContext(ctx, c.Clone(), oB)
		cancel()
		if err == nil {
			// The run beat the timeout; the periodic snapshots still allow
			// the resume leg below.
			t.Logf("%v: run finished before cancellation", alg)
		}
		if _, statErr := os.Stat(ckpt); statErr != nil {
			t.Fatalf("%v: no snapshot after cancel: %v", alg, statErr)
		}

		recC := NewRecorder()
		oC := base
		oC.Probe = recC
		oC.ResumeFrom = ckpt
		resC, err := Simulate(c.Clone(), oC)
		if err != nil {
			t.Fatalf("%v resume: %v", alg, err)
		}
		if !resC.Resumed {
			t.Errorf("%v: resumed run does not report Resumed", alg)
		}
		sameFinals(t, alg.String()+" cancel-resume", resA.Final, resC.Final)
	}
}
