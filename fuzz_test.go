package parsim

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzEngines is the cross-engine differential fuzz harness: every fuzz
// input decodes into a (seed, size, horizon, workers, lanes, jitLanes)
// tuple, the tuple selects a random unit-delay circuit, and every
// registered engine — including the batched vector engine's lane 0 at a
// randomized plane width (64, 256 or 1024 lanes, i.e. 1, 4 or 16 words per
// plane) and the codegen engine's lane 0 at a randomized width of its own
// (1, 64 or 256 lanes, covering both its scalar table-kind fallback and
// its multi-word fused batches) — must reproduce the sequential reference
// simulator's node history event for event and its final node values bit
// for bit.
//
// One refusal is legal: the conservative asynchronous pair may return the
// structured ErrStalled self-report on circuits whose feedback loops never
// receive events (their valid-times cannot advance through such a loop —
// the known limitation the supervision layer's stall report exists for;
// testdata/fuzz/FuzzEngines/stall-asym pins one such circuit). Any silent
// divergence, panic, or other error still fails the harness.
//
// The checked-in corpus under testdata/fuzz/FuzzEngines replays on every
// plain `go test` run, so `make check` (and its -race leg) exercises the
// full differential matrix even when no fuzzing budget is configured.
// `make fuzz` / CI's fuzz-smoke job explore new inputs.
func FuzzEngines(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(40), uint8(1), uint8(0), uint8(0))
	f.Add(int64(3), uint8(60), uint8(200), uint8(2), uint8(1), uint8(1))
	f.Add(int64(7), uint8(25), uint8(99), uint8(3), uint8(2), uint8(2))
	f.Add(int64(-12345), uint8(80), uint8(120), uint8(4), uint8(1), uint8(2))
	f.Add(int64(1<<40), uint8(120), uint8(64), uint8(2), uint8(2), uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, sizeB, horizonB, workersB, lanesB, jitLanesB uint8) {
		size := int(sizeB)%120 + 4
		horizon := Time(int(horizonB)%220 + 2)
		workers := int(workersB)%4 + 1
		lanes := fuzzLaneWidths[int(lanesB)%len(fuzzLaneWidths)]
		jitLanes := jitLaneWidths[int(jitLanesB)%len(jitLaneWidths)]

		c := RandomUnitCircuit(seed, size)

		ref := NewRecorder()
		want, err := Simulate(c, Options{
			Algorithm: Sequential, Horizon: horizon, Workers: 1, Probe: ref,
		})
		if err != nil {
			t.Fatalf("sequential oracle: %v", err)
		}

		for _, alg := range allAlgorithms {
			if alg == Sequential {
				continue
			}
			rec := NewRecorder()
			opts := Options{Algorithm: alg, Horizon: horizon, Workers: workers, Probe: rec}
			if alg == Vector {
				// Exercise the multi-word plane paths: the extra lanes run
				// seed-shifted stimulus, but lane 0 (the probe lane) must
				// still match the scalar oracle exactly.
				opts.Lanes = lanes
			}
			if alg == JIT {
				// Same contract for the codegen engine, over a ladder that
				// starts at one lane so its scalar table-kind fallback gets
				// differential coverage too.
				opts.Lanes = jitLanes
			}
			res, err := Simulate(c, opts)
			if err != nil {
				conservative := alg == Async || alg == DistAsync
				if conservative && errors.Is(err, ErrStalled) {
					continue // loud refusal on an event-free feedback loop
				}
				t.Fatalf("%v(seed=%d size=%d horizon=%d workers=%d lanes=%d): %v",
					alg, seed, size, horizon, workers, lanes, err)
			}
			if d := HistoryDiff(c, ref, rec); d != "" {
				t.Errorf("%v(seed=%d size=%d horizon=%d workers=%d lanes=%d) history diverges: %s",
					alg, seed, size, horizon, workers, lanes, d)
			}
			for n := range c.Nodes {
				if res.Final[n] != want.Final[n] {
					t.Errorf("%v(seed=%d): node %q final %v, want %v",
						alg, seed, c.Nodes[n].Name, res.Final[n], want.Final[n])
				}
			}
		}
	})
}

// fuzzLaneWidths are the vector plane widths the harness cycles through:
// one machine word, four words, and sixteen words per plane — the same
// ladder the lanes x workers benchmark sweep measures.
var fuzzLaneWidths = []int{64, 256, 1024}

// jitLaneWidths is the codegen engine's ladder. It starts at a single lane
// because the jit compiler lowers scalar table kinds (mul/alu/rom/ram)
// through a different kernel than their bit-sliced wide forms — both paths
// need differential coverage.
var jitLaneWidths = []int{1, 64, 256}

// corpusEntry builds the go-fuzz corpus file encoding for the harness's
// parameter tuple; used by the generator test below to keep the checked-in
// corpus format honest.
func corpusEntry(seed int64, size, horizon, workers, lanes, jitLanes uint8) []byte {
	var b [13]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	b[8], b[9], b[10], b[11], b[12] = size, horizon, workers, lanes, jitLanes
	return b[:]
}

// TestFuzzCorpusSeedsReplay re-runs the f.Add seed tuples through one
// deterministic differential pass outside the fuzz driver, so the matrix
// is exercised even under `go test -run`.
func TestFuzzCorpusSeedsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is slow")
	}
	for _, e := range [][]byte{
		corpusEntry(1, 10, 40, 1, 0, 0),
		corpusEntry(3, 60, 200, 2, 1, 1),
		corpusEntry(7, 25, 99, 3, 2, 2),
	} {
		seed := int64(binary.LittleEndian.Uint64(e[:8]))
		c := RandomUnitCircuit(seed, int(e[8])%120+4)
		horizon := Time(int(e[9])%220 + 2)
		workers := int(e[10])%4 + 1
		lanes := fuzzLaneWidths[int(e[11])%len(fuzzLaneWidths)]
		jitLanes := jitLaneWidths[int(e[12])%len(jitLaneWidths)]
		ref := NewRecorder()
		if _, err := Simulate(c, Options{Algorithm: Sequential, Horizon: horizon, Workers: 1, Probe: ref}); err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder()
		if _, err := Simulate(c, Options{Algorithm: Vector, Horizon: horizon, Workers: workers, Lanes: lanes, Probe: rec}); err != nil {
			t.Fatal(err)
		}
		if d := HistoryDiff(c, ref, rec); d != "" {
			t.Errorf("seed %d lanes %d: %s", seed, lanes, d)
		}
		jrec := NewRecorder()
		if _, err := Simulate(c, Options{Algorithm: JIT, Horizon: horizon, Workers: workers, Lanes: jitLanes, Probe: jrec}); err != nil {
			t.Fatal(err)
		}
		if d := HistoryDiff(c, ref, jrec); d != "" {
			t.Errorf("jit seed %d lanes %d: %s", seed, jitLanes, d)
		}
	}
}
