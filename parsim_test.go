package parsim

import (
	"bytes"
	"strings"
	"testing"
)

// buildBlinker returns a tiny unit-delay circuit usable by every algorithm.
func buildBlinker(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("blinker")
	clk := b.Bit("clk")
	q := b.Bit("q")
	b.Clock("osc", clk, 10, 0, 0)
	b.Gate(Not, "inv", 1, q, clk)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllAlgorithmsAgree(t *testing.T) {
	c := RandomUnitCircuit(3, 60)
	var ref *Recorder
	for _, alg := range []Algorithm{Sequential, EventDriven, Compiled, Async, DistAsync, TimeWarp, ChandyMisra, Vector} {
		rec := NewRecorder()
		opts := Options{Algorithm: alg, Horizon: 200, Probe: rec, Workers: 2}
		if alg == Sequential {
			opts.Workers = 1
		}
		res, err := Simulate(c, opts)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Stats.NodeUpdates == 0 {
			t.Errorf("%v: no activity", alg)
		}
		if ref == nil {
			ref = rec
			continue
		}
		if d := HistoryDiff(c, ref, rec); d != "" {
			t.Errorf("%v differs from sequential: %s", alg, d)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	c := buildBlinker(t)
	cases := []Options{
		{Algorithm: Sequential, Horizon: 10, Workers: 4}, // seq is single-worker
		{Algorithm: Async, Horizon: -1},
		{Algorithm: Algorithm(99), Horizon: 10},
		{Algorithm: Async, Horizon: 10, Workers: -3},
	}
	for i, opts := range cases {
		if _, err := Simulate(c, opts); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	if _, err := Simulate(nil, Options{Horizon: 10}); err == nil {
		t.Error("nil circuit accepted")
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	c := buildBlinker(t)
	res, err := Simulate(c, Options{Algorithm: Async, Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 1 {
		t.Errorf("default workers = %d", res.Stats.Workers)
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[Algorithm]string{
		Sequential: "sequential", EventDriven: "event-driven",
		Compiled: "compiled", Async: "asynchronous",
		DistAsync: "distributed-async", TimeWarp: "time-warp",
		ChandyMisra: "chandy-misra", Vector: "vector", Algorithm(99): "unknown",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestNetlistRoundTripViaFacade(t *testing.T) {
	c := BenchFeedbackChain(5)
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Name != c.Name || len(c2.Elems) != len(c.Elems) {
		t.Errorf("round trip mangled the circuit")
	}
	if !strings.Contains(NetlistSummary(c), "feedback-chain-5") {
		t.Error("summary missing circuit name")
	}
}

func TestVCDOutput(t *testing.T) {
	c := buildBlinker(t)
	rec := NewRecorder()
	if _, err := Simulate(c, Options{Algorithm: Sequential, Horizon: 40, Probe: rec}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, c, rec, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale", "$var wire 1", "clk", "$dumpvars", "#0", "#40"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
}

func TestEventDrivenAblationsAgree(t *testing.T) {
	c := BenchInverterArray(InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 4, TogglePeriod: 1})
	ref := NewRecorder()
	if _, err := Simulate(c, Options{Algorithm: Sequential, Horizon: 100, Probe: ref}); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Algorithm: EventDriven, Horizon: 100, Workers: 3, NoSteal: true},
		{Algorithm: EventDriven, Horizon: 100, Workers: 3, CentralQueue: true},
	} {
		rec := NewRecorder()
		opts.Probe = rec
		if _, err := Simulate(c, opts); err != nil {
			t.Fatal(err)
		}
		if d := HistoryDiff(c, ref, rec); d != "" {
			t.Errorf("ablation differs: %s", d)
		}
	}
}

func TestGateLookaheadOption(t *testing.T) {
	c := BenchCPU(DefaultCPU())
	h := CPUHorizon(DefaultCPU(), 15)
	ref := NewRecorder()
	if _, err := Simulate(c, Options{Algorithm: Sequential, Horizon: h, Probe: ref}); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	res, err := Simulate(c, Options{
		Algorithm: Async, Workers: 2, Horizon: h, Probe: rec, GateLookahead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := HistoryDiff(c, ref, rec); d != "" {
		t.Fatalf("gate lookahead changed results: %s", d)
	}
	if res.Stats.ModelCalls == 0 {
		t.Error("no model calls recorded")
	}
}

func TestCompiledStrategyOption(t *testing.T) {
	c := BenchInverterArray(InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 4, TogglePeriod: 1})
	for _, s := range []Strategy{RoundRobin, Blocks, CostLPT} {
		if _, err := Simulate(c, Options{Algorithm: Compiled, Horizon: 50, Workers: 2, Strategy: s}); err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
	}
}

func TestIsUnitDelay(t *testing.T) {
	if !IsUnitDelay(BenchInverterArray(DefaultInverterArray())) {
		t.Error("inverter array should be unit delay")
	}
	if IsUnitDelay(BenchCPU(DefaultCPU())) {
		t.Error("CPU is not unit delay")
	}
}

func TestCPUFacade(t *testing.T) {
	cfg := DefaultCPU()
	c := BenchCPU(cfg)
	res, err := Simulate(c, Options{Algorithm: Async, Workers: 2, Horizon: CPUHorizon(cfg, 150)})
	if err != nil {
		t.Fatal(err)
	}
	iss := NewISS(cfg.Program)
	iss.Run(150)
	for r := 0; r < 16; r++ {
		got, ok := CPURegValue(c, res.Final, r)
		if !ok || got != iss.Reg[r] {
			t.Errorf("r%d = %d (ok=%v), ISS %d", r, got, ok, iss.Reg[r])
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if V(4, 9).String() != "4'b1001" {
		t.Error("V broken")
	}
	v, err := ParseValue("8'hff")
	if err != nil || v.MustUint() != 255 {
		t.Error("ParseValue broken")
	}
	if AllX(2).IsKnown() || !AllZ(2).HasZ() {
		t.Error("AllX/AllZ broken")
	}
}

func TestExperimentFacade(t *testing.T) {
	cfg := DefaultExperimentConfig(ModelMode)
	cfg.Quick = true
	cfg.MaxP = 4
	f, err := Experiment("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("fig5 has %d series", len(f.Series))
	}
	if !strings.Contains(f.Format(), "asynchronous") {
		t.Error("figure formatting broken")
	}
	if _, err := Experiment("nope", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 10 {
		t.Errorf("expected 10 experiments, have %d", len(ExperimentIDs()))
	}
}

// TestQuickAllAlgorithmsOnRandomCircuits is the top-level differential
// property: on randomized unit-delay circuits, every algorithm in the
// library produces the same node histories.
func TestQuickAllAlgorithmsOnRandomCircuits(t *testing.T) {
	algs := []Algorithm{EventDriven, Compiled, Async, DistAsync, TimeWarp, ChandyMisra, Vector}
	for seed := int64(100); seed < 105; seed++ {
		c := RandomUnitCircuit(seed, 50+int(seed%3)*20)
		horizon := Time(150 + seed%5*30)
		workers := 2 + int(seed%3)

		ref := NewRecorder()
		if _, err := Simulate(c, Options{Algorithm: Sequential, Horizon: horizon, Probe: ref}); err != nil {
			t.Fatal(err)
		}
		for _, alg := range algs {
			rec := NewRecorder()
			if _, err := Simulate(c, Options{
				Algorithm: alg, Workers: workers, Horizon: horizon, Probe: rec,
			}); err != nil {
				t.Fatalf("seed %d %v: %v", seed, alg, err)
			}
			if d := HistoryDiff(c, ref, rec); d != "" {
				t.Errorf("seed %d: %v differs: %s", seed, alg, d)
			}
		}
	}
}

// TestQuickAsyncOptionMatrix sweeps the async algorithm's option space on
// circuits with multi-delay elements and feedback.
func TestQuickAsyncOptionMatrix(t *testing.T) {
	for seed := int64(200); seed < 206; seed++ {
		c := RandomCircuit(seed, 70)
		ref := NewRecorder()
		if _, err := Simulate(c, Options{Algorithm: Sequential, Horizon: 200, Probe: ref}); err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{
			{Algorithm: Async, Workers: 3},
			{Algorithm: Async, Workers: 3, NoLookahead: true},
			{Algorithm: Async, Workers: 3, GateLookahead: true},
			{Algorithm: Async, Workers: 1, GateLookahead: true, NoLookahead: true},
			{Algorithm: ChandyMisra, Workers: 2},
		} {
			opts.Horizon = 200
			rec := NewRecorder()
			opts.Probe = rec
			if _, err := Simulate(c, opts); err != nil {
				t.Fatal(err)
			}
			if d := HistoryDiff(c, ref, rec); d != "" {
				t.Errorf("seed %d opts %+v: %s", seed, opts, d)
			}
		}
	}
}
