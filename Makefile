GO ?= go

.PHONY: build test race vet check figures clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race runs the cancellation and concurrency-sensitive tests under the
## race detector; it is slower than `test` but catches data races the
## plain run cannot.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

## figures regenerates the quick machine-readable benchmark snapshot.
figures:
	$(GO) run ./cmd/figures -quick -json BENCH_baseline.json

clean:
	$(GO) clean ./...
