GO ?= go

.PHONY: build test race vet lint check figures clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race runs the cancellation and concurrency-sensitive tests under the
## race detector; it is slower than `test` but catches data races the
## plain run cannot.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint runs the repo's custom vet pass (tools/lint): syntactic checks
## for sync/atomic misuse around the per-worker counter surface.
lint:
	$(GO) run ./tools/lint ./...

check: build vet lint test race

## figures regenerates the quick machine-readable benchmark snapshot.
figures:
	$(GO) run ./cmd/figures -quick -json BENCH_baseline.json

clean:
	$(GO) clean ./...
