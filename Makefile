GO ?= go

.PHONY: build test race vet lint chaos serve-test check figures clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race runs the cancellation and concurrency-sensitive tests under the
## race detector; it is slower than `test` but catches data races the
## plain run cannot.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint runs the repo's custom vet pass (tools/lint): syntactic checks
## for sync/atomic misuse around the per-worker counter surface.
lint:
	$(GO) run ./tools/lint ./...

## chaos runs the supervision-layer fault-injection suite under the race
## detector: induced worker panics, dropped wakeups and genuine stalls on
## every engine (guard_test.go), plus the guard package's own unit tests.
chaos:
	$(GO) test -race -timeout 5m -count=1 -run 'TestGuard' .
	$(GO) test -race -timeout 5m -count=1 ./internal/guard

## serve-test runs the simulation-service end-to-end suite (submit, poll,
## admission control, scheduler budget, drain) under the race detector.
serve-test:
	$(GO) test -race -timeout 5m -count=1 ./internal/server

check: build vet lint test race chaos serve-test

## figures regenerates the quick machine-readable benchmark snapshot.
figures:
	$(GO) run ./cmd/figures -quick -json BENCH_baseline.json

clean:
	$(GO) clean ./...
