GO ?= go

.PHONY: build test race vet lint chaos serve-test auto-test ckpt-test \
	fleet-test jit-test check figures bench-diff bench-vector bench-vector2 \
	bench-fault bench-auto bench-ckpt bench-fleet bench-jit wide-test fuzz \
	fuzz-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race runs the cancellation and concurrency-sensitive tests under the
## race detector; it is slower than `test` but catches data races the
## plain run cannot.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## lint runs the repo's custom vet pass (tools/lint): syntactic checks
## for sync/atomic misuse around the per-worker counter surface.
lint:
	$(GO) run ./tools/lint ./...

## chaos runs the supervision-layer fault-injection suite under the race
## detector: induced worker panics, dropped wakeups and genuine stalls on
## every engine (guard_test.go), plus the guard package's own unit tests.
chaos:
	$(GO) test -race -timeout 5m -count=1 -run 'TestGuard' .
	$(GO) test -race -timeout 5m -count=1 ./internal/guard

## serve-test runs the simulation-service end-to-end suite (submit, poll,
## admission control, scheduler budget, drain) under the race detector.
serve-test:
	$(GO) test -race -timeout 5m -count=1 ./internal/server

## auto-test runs the engine-selection suite under the race detector: the
## static profiler's golden fingerprints, the cost-model predictions, and
## the auto engine's end-to-end selection path.
auto-test:
	$(GO) test -race -timeout 5m -count=1 ./internal/analyze ./internal/machine ./internal/auto

## ckpt-test runs the crash-durability suite under the race detector: the
## snapshot codec (round-trip, corruption, the FuzzCheckpoint corpus), the
## async coalescing writer, bit-identical resume on every engine, the
## parsimd job journal + restart recovery, and the end-to-end kill -9
## daemon test.
ckpt-test:
	$(GO) test -race -timeout 5m -count=1 -run 'TestResume' .
	$(GO) test -race -timeout 5m -count=1 ./internal/checkpoint
	$(GO) test -race -timeout 5m -count=1 -run 'TestJournal|TestRecovery|TestDrainResume' ./internal/server
	$(GO) test -race -timeout 5m -count=1 ./cmd/parsimd

## fleet-test runs the cluster suite under the race detector: the
## consistent-hash ring and content-addressed key units, the coordinator
## multi-node end-to-end tests (including the mid-run node-kill requeue
## drill and fleet-wide backpressure), and the single-node dedup layer.
fleet-test:
	$(GO) test -race -timeout 10m -count=1 ./internal/cluster
	$(GO) test -race -timeout 5m -count=1 -run 'TestDedup' ./internal/server

## jit-test runs the codegen-engine suite under the race detector: the
## per-kernel truth-table proofs (scalar, one-word and wide planes), the
## engine's unit tests, the checked-in differential fuzz corpus replay and
## the bit-identical resume tests.
jit-test:
	$(GO) test -race -timeout 5m -count=1 ./internal/codegen
	$(GO) test -race -timeout 5m -count=1 -run 'TestResumeJIT|FuzzEngines|TestFuzzCorpusSeedsReplay' .

check: build vet lint test race chaos serve-test auto-test ckpt-test fleet-test jit-test

## figures regenerates the quick machine-readable benchmark snapshot.
figures:
	$(GO) run ./cmd/figures -quick -json BENCH_baseline.json

## bench-diff regenerates the quick snapshot into a scratch file and
## compares it point-by-point against the tracked BENCH_baseline.json
## (tools/benchdiff, 15% relative tolerance). The second leg re-measures
## the v2 lanes x workers sweep against BENCH_vector2.json: its gated
## series are worker-normalised lane-amortization ratios, so they compare
## across hosts, but they still ride on wall-clock — hence the loose 50%
## tolerance. Fails on drift; after an intentional model change,
## re-baseline with `make figures` / `make bench-vector2`.
bench-diff:
	$(GO) run ./cmd/figures -quick -json .bench-current.json
	$(GO) run ./tools/benchdiff BENCH_baseline.json .bench-current.json
	$(GO) run ./cmd/figures -fig v2 -mode real -quick -json .bench-current.json
	$(GO) run ./tools/benchdiff -tol 0.5 -abs 0.5 BENCH_vector2.json .bench-current.json
	$(GO) run ./cmd/figures -fig j1 -mode real -json .bench-current.json
	$(GO) run ./tools/benchdiff -tol 0.5 -abs 0.5 BENCH_jit.json .bench-current.json
	rm -f .bench-current.json

## bench-vector regenerates the batched-engine throughput snapshot: the
## v1 experiment sweeps stimulus lanes on the inverter array and records
## per-vector speed-up over the scalar compiled engine.
bench-vector:
	$(GO) run ./cmd/figures -fig v1 -mode real -json BENCH_vector.json

## bench-vector2 regenerates the lanes x workers sweep (v2): wide planes
## multiply the lane axis with the worker axis; the snapshot records the
## per-vector throughput matrix and the >=4x acceptance ratio note.
bench-vector2:
	$(GO) run ./cmd/figures -fig v2 -mode real -quick -json BENCH_vector2.json

## bench-fault regenerates the concurrent stuck-at fault-simulation
## snapshot (f1): coverage, collapse rate and pass counts on the paper
## circuits; the series are deterministic.
bench-fault:
	$(GO) run ./cmd/figures -fig f1 -mode real -json BENCH_fault.json

## bench-auto regenerates the engine-selection snapshot (a1): engine=auto's
## measured wall against the best of every engine x worker combination on
## the paper circuits; acceptance is ratio >= 0.9 everywhere.
bench-auto:
	$(GO) run ./cmd/figures -fig a1 -mode real -quick -json BENCH_auto.json

## bench-ckpt regenerates the checkpointing-overhead snapshot (c1): the
## compiled engine on the four paper circuits, plain vs checkpointing at
## the default capture interval and write gap, measured in process CPU
## time; acceptance is <=1.05x on every circuit.
bench-ckpt:
	$(GO) run ./cmd/figures -fig c1 -mode real -json BENCH_ckpt.json

## bench-jit regenerates the codegen-engine snapshot (j1): jit vs compiled
## wall-clock on the gate-level multiplier and the microprocessor at 1-4
## workers; acceptance is >=1.5x over compiled at one worker on both.
bench-jit:
	$(GO) run ./cmd/figures -fig j1 -mode real -json BENCH_jit.json

## bench-fleet regenerates the fleet-layer snapshot (d1): job throughput
## of 1..3 coordinator-routed nodes via the deterministic fleet model
## (real ring, real spill/backpressure policy; acceptance is >= 2.2x at
## 3 nodes), plus a real measurement of dedup-hit latency against
## re-simulating the identical submission (acceptance is >= 10x faster).
## Add `-mode real` by hand to wall-clock an actual in-process fleet.
bench-fleet:
	$(GO) run ./cmd/figures -fig d1 -json BENCH_fleet.json

## wide-test runs the wide-plane and fault-simulation suites under the
## race detector — the same leg CI's wide-lane job runs.
wide-test:
	$(GO) test -race -timeout 5m -count=1 -run Wide ./internal/vector ./internal/codegen ./internal/analyze ./internal/logic ./internal/server .

## fuzz explores new inputs for the cross-engine differential harness.
## The checked-in corpus under testdata/fuzz/FuzzEngines already replays
## on every plain `go test` run (so `check` covers it, with -race).
fuzz:
	$(GO) test -fuzz=FuzzEngines -fuzztime=5m -run '^$$' .

## fuzz-smoke is the CI-sized fuzz budget.
fuzz-smoke:
	$(GO) test -fuzz=FuzzEngines -fuzztime=30s -run '^$$' .

clean:
	$(GO) clean ./...
	rm -f .bench-current.json
