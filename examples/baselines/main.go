// Baselines: the paper's asynchronous algorithm against the two rival
// asynchronous disciplines from its related-work section, plus the
// distributed-memory port — all producing identical results, with wildly
// different overheads.
//
//   - Async (the paper): consume only known-valid events; valid-times
//     advance incrementally, so no rollbacks and no deadlocks.
//   - TimeWarp (Arnold/Jefferson): execute speculatively, save state, roll
//     back on stragglers, cancel with anti-messages.
//   - ChandyMisra (1981): valid-times frozen; run to deadlock, update all
//     clock values globally, restart.
//   - DistAsync: the paper's algorithm over message passing (future work).
package main

import (
	"fmt"
	"log"

	"parsim"
)

func main() {
	type workload struct {
		name    string
		c       *parsim.Circuit
		horizon parsim.Time
	}
	mult := parsim.DefaultMultiplier()
	workloads := []workload{
		{"inverter-array", parsim.BenchInverterArray(parsim.DefaultInverterArray()), 192},
		{"mult16-gate", parsim.BenchGateMultiplier(mult), mult.InPeriod * 2},
		{"feedback-chain-31", parsim.BenchFeedbackChain(31), 1200},
	}

	algs := []parsim.Algorithm{
		parsim.Async, parsim.TimeWarp, parsim.ChandyMisra, parsim.DistAsync,
	}
	const workers = 4

	for _, w := range workloads {
		fmt.Printf("\n%s (P=%d, horizon %d):\n", w.name, workers, w.horizon)
		var ref *parsim.Recorder
		for _, alg := range algs {
			rec := parsim.NewRecorder()
			res, err := parsim.Simulate(w.c, parsim.Options{
				Algorithm: alg, Workers: workers, Horizon: w.horizon, Probe: rec,
			})
			if err != nil {
				log.Fatal(err)
			}
			if ref == nil {
				ref = rec
			} else if d := parsim.HistoryDiff(w.c, ref, rec); d != "" {
				log.Fatalf("%v produced different results: %s", alg, d)
			}
			extra := ""
			switch alg {
			case parsim.TimeWarp:
				extra = fmt.Sprintf("  rollbacks=%d anti-msgs=%d peak-saved=%d",
					res.Rollbacks, res.Cancelled, res.PeakLog)
			case parsim.ChandyMisra:
				extra = fmt.Sprintf("  deadlocks-broken=%d", res.Rounds-1)
			case parsim.DistAsync:
				extra = fmt.Sprintf("  messages=%d", res.Messages)
			}
			fmt.Printf("  %-18v %8d events %10d evals  %8v%s\n",
				alg, res.Stats.NodeUpdates, res.Stats.Evals,
				res.Stats.Wall.Round(1e5), extra)
		}
	}
	fmt.Println("\nidentical histories everywhere; only the machinery differs —")
	fmt.Println("the paper's algorithm needs no rollbacks, no saved state and no")
	fmt.Println("deadlock recovery because it advances valid-times incrementally")
}
