// Quickstart: build a small sequential circuit with the Builder, simulate
// it with the asynchronous algorithm, and inspect the waveform.
//
// The circuit is a 4-bit ripple counter: a clock drives a chain of toggle
// flip-flops (DFFR with the data input fed from the inverted output).
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"parsim"
)

func main() {
	b := parsim.NewBuilder("ripple-counter")

	clk := b.Bit("clk")
	rst := b.Bit("rst")
	b.Clock("clkgen", clk, 20, 10, 0) // rising edges at t = 10, 30, 50, ...
	b.Wave("rstgen", rst,
		[]parsim.Time{0, 5},
		[]parsim.Value{parsim.V(1, 1), parsim.V(1, 0)}) // reset pulse

	// Each stage toggles on the falling edge of the previous stage; the
	// inverted output provides both the toggle data and the next clock.
	prevClk := clk
	for i := 0; i < 4; i++ {
		q := b.Bit(fmt.Sprintf("q%d", i))
		nq := b.Bit(fmt.Sprintf("nq%d", i))
		b.AddElement(parsim.DFFR, fmt.Sprintf("ff%d", i), 1,
			[]parsim.NodeID{q}, []parsim.NodeID{prevClk, rst, nq},
			parsim.Params{Init: parsim.V(1, 0)})
		b.Gate(parsim.Not, fmt.Sprintf("inv%d", i), 1, nq, q)
		prevClk = nq
	}

	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c)

	// Record every node and simulate with the lock-free asynchronous
	// algorithm on all available cores.
	rec := parsim.NewRecorder()
	const horizon = 400
	res, err := parsim.Simulate(c, parsim.Options{
		Algorithm: parsim.Async,
		Workers:   runtime.NumCPU(),
		Horizon:   horizon,
		Probe:     rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Stats.String())

	// The counter value is spread across the four q bits.
	fmt.Println("\ncount waveform (sampled every 20 ticks):")
	for t := parsim.Time(0); t < horizon; t += 20 {
		v := 0
		known := true
		for i := 0; i < 4; i++ {
			bit := rec.ValueAt(c, c.Node(fmt.Sprintf("q%d", i)).ID, t)
			u, ok := bit.Uint()
			if !ok {
				known = false
				break
			}
			v |= int(u) << i
		}
		if known {
			fmt.Printf("  t=%3d  count=%2d\n", t, v)
		} else {
			fmt.Printf("  t=%3d  count=x\n", t)
		}
	}

	// Dump a VCD for waveform viewers.
	f, err := os.Create("counter.vcd")
	if err != nil {
		log.Fatal(err)
	}
	if err := parsim.WriteVCD(f, c, rec, horizon); err != nil {
		log.Fatal(err)
	}
	// The write isn't durable until the file closes cleanly.
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote counter.vcd")
}
