// Async pipeline: how the asynchronous algorithm adapts its behaviour to
// circuit shape, reproducing section 4's narrative with live counters.
//
//   - Feed-forward circuits with plentiful stimulus let every activation
//     consume long runs of queued events ("concurrent" execution — huge
//     effective problem size).
//   - Small circuits and feedback rings force one-event-at-a-time progress:
//     the processors "pipeline" the evaluation instead, and per-event
//     scheduling overhead rises.
//
// The events-consumed-per-evaluation ratio makes the regime visible.
package main

import (
	"fmt"
	"log"

	"parsim"
)

func main() {
	type workload struct {
		name    string
		c       *parsim.Circuit
		horizon parsim.Time
		expect  string
	}

	mult := parsim.DefaultMultiplier()
	workloads := []workload{
		{
			"inverter array (feed-forward, busy)",
			parsim.BenchInverterArray(parsim.DefaultInverterArray()),
			512,
			"many events per eval: batched, concurrent execution",
		},
		{
			"gate multiplier (feed-forward, bursty)",
			parsim.BenchGateMultiplier(mult),
			mult.InPeriod * 4,
			"bursty: activations chase fresh events through the array",
		},
		{
			"functional multiplier (small, 100 elements)",
			parsim.BenchFuncMultiplier(mult),
			mult.InPeriod * 4,
			"few elements: parallelism only from pipelining",
		},
		{
			"feedback chain (worst case)",
			parsim.BenchFeedbackChain(31),
			2000,
			"serial: one event at a time around the loop",
		},
	}

	fmt.Printf("%-44s %10s %10s %8s\n", "workload", "evals", "events", "ev/eval")
	for _, w := range workloads {
		res, err := parsim.Simulate(w.c, parsim.Options{
			Algorithm: parsim.Async, Workers: 2, Horizon: w.horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(res.Stats.EventsUsed) / float64(res.Stats.Evals)
		fmt.Printf("%-44s %10d %10d %8.1f   <- %s\n",
			w.name, res.Stats.Evals, res.Stats.EventsUsed, ratio, w.expect)
	}

	fmt.Println("\nthe algorithm 'adjusts to execute the events concurrently or")
	fmt.Println("pipelined as needed' (paper, section 4) — no mode switch required")
}
