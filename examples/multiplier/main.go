// Multiplier: the paper's flagship workload at two representation levels.
//
// The same 16-bit multiplication is simulated as ~2400 two-input gates and
// as ~140 functional blocks (3-bit multipliers, adders, bus glue). Both are
// checked against native integer multiplication, and the example contrasts
// how the asynchronous algorithm behaves on each: the big gate circuit
// keeps every worker busy, while the small functional circuit pipelines
// (few events per evaluation), exactly as the paper reports.
package main

import (
	"fmt"
	"log"
	"runtime"

	"parsim"
)

func main() {
	cfg := parsim.DefaultMultiplier()
	gate := parsim.BenchGateMultiplier(cfg)
	fn := parsim.BenchFuncMultiplier(cfg)
	fmt.Println(gate)
	fmt.Println(fn)

	const periods = 6
	horizon := cfg.InPeriod * periods

	for _, c := range []*parsim.Circuit{gate, fn} {
		rec := parsim.NewRecorderFor(c.Node("p").ID)
		res, err := parsim.Simulate(c, parsim.Options{
			Algorithm: parsim.Async,
			Workers:   runtime.NumCPU(),
			Horizon:   horizon,
			Probe:     rec,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Sample the product at the end of each stimulus period, when the
		// longest carry chain has settled, and verify against int math.
		agen := &c.Elems[c.ElByName["agen"]]
		bgen := &c.Elems[c.ElByName["bgen"]]
		ok := 0
		for k := 0; k < periods; k++ {
			at := parsim.Time(k+1)*cfg.InPeriod - 1
			a := agen.GenValueAt(at).MustUint()
			bv := bgen.GenValueAt(at).MustUint()
			got := rec.ValueAt(c, c.Node("p").ID, at)
			want := (a * bv) & 0xffffffff
			u, known := got.Uint()
			if !known || u != want {
				log.Fatalf("%s: %d * %d = %v, want %d", c.Name, a, bv, got, want)
			}
			ok++
		}
		perEval := float64(res.Stats.EventsUsed) / float64(res.Stats.Evals)
		fmt.Printf("%-14s %d products verified; %d evals, %.1f events consumed per evaluation\n",
			c.Name+":", ok, res.Stats.Evals, perEval)
	}

	fmt.Println("\nthe gate-level representation spreads the work over thousands of")
	fmt.Println("cheap elements; the functional one concentrates it in ~150 blocks,")
	fmt.Println("so beyond a few processors it can only pipeline — the effect behind")
	fmt.Println("the paper's poor functional-level speed-ups at 15 processors")
}
