// Microprocessor: assemble a program, run it on the gate-level pipelined
// CPU under all four simulation algorithms, and verify the architectural
// state against the reference instruction-set simulator.
//
// The program computes gcd(91, 63) = 7 by repeated subtraction, using the
// CPU's branch-with-delay-slot semantics.
package main

import (
	"fmt"
	"log"
	"runtime"

	"parsim"
)

func main() {
	// Build the real program: subtraction loop with an unsigned compare via
	// LtU is not in the ISA, so use the classic trick: keep subtracting the
	// smaller register from the larger by swapping.
	prog := []uint16{
		parsim.AsmLI(1, 91), // 0: a
		parsim.AsmLI(2, 63), // 1: b
		// loop @2: while b != 0 { t = a mod-ish: if a < b swap; a = a - b }
		// Simplified Euclid by subtraction with swap-free form:
		// r3 = a - b; if high bit set (a < b), swap instead.
		parsim.AsmSUB(3, 1, 2), // 2
		parsim.AsmBNEZ(3, 1),   // 3: if a != b continue at 6
		parsim.AsmNOP(),        // 4: delay slot
		parsim.AsmJMP(20),      // 5: equal -> done
		// @6: r4 = sign bit of r3 (shift right 15 by repeated ADD? use AND
		// with 0x8000 loaded once in r5)
		parsim.AsmAND(4, 3, 5), // 6: r4 = r3 & 0x8000
		parsim.AsmBNEZ(4, 3),   // 7: if a < b, swap -> 12
		parsim.AsmNOP(),        // 8: delay slot
		parsim.AsmOR(1, 3, 0),  // 9: a >= b: a = a - b
		parsim.AsmJMP(2),       // 10: loop
		parsim.AsmNOP(),        // 11: delay slot
		parsim.AsmOR(6, 1, 0),  // 12: swap a and b
		parsim.AsmOR(1, 2, 0),  // 13
		parsim.AsmOR(2, 6, 0),  // 14
		parsim.AsmJMP(2),       // 15: loop
		parsim.AsmNOP(),        // 16: delay slot
		parsim.AsmNOP(),        // 17
		parsim.AsmNOP(),        // 18
		parsim.AsmNOP(),        // 19
		parsim.AsmJMP(20),      // 20: spin
		parsim.AsmNOP(),        // 21: delay slot
	}
	// r5 = 0x8000 must be set before the loop: LI only loads 8 bits, so
	// build it with a shift... the ISA has no variable shift; load 0x80 and
	// ADD it to itself 8 times at the start.
	setup := []uint16{
		parsim.AsmLI(5, 0x80),
	}
	for i := 0; i < 8; i++ {
		setup = append(setup, parsim.AsmADD(5, 5, 5))
	}
	program := append(setup, offsetJumps(prog, uint8(len(setup)))...)

	cfg := parsim.CPUConfig{Program: program, ClockPeriod: 96}
	c := parsim.BenchCPU(cfg)
	fmt.Println(c)

	const cycles = 400
	horizon := parsim.CPUHorizon(cfg, cycles)

	iss := parsim.NewISS(program)
	iss.Run(cycles)
	fmt.Printf("ISS after %d cycles: gcd(91,63) -> r1 = %d (want 7)\n", cycles, iss.Reg[1])

	for _, alg := range []parsim.Algorithm{
		parsim.Sequential, parsim.EventDriven, parsim.Async,
	} {
		opts := parsim.Options{Algorithm: alg, Horizon: horizon, Workers: runtime.NumCPU()}
		if alg == parsim.Sequential {
			opts.Workers = 1
		}
		res, err := parsim.Simulate(c, opts)
		if err != nil {
			log.Fatal(err)
		}
		r1, ok := parsim.CPURegValue(c, res.Final, 1)
		if !ok || r1 != iss.Reg[1] {
			log.Fatalf("%v: r1 = %d (ok=%v), ISS says %d", alg, r1, ok, iss.Reg[1])
		}
		fmt.Printf("%-13v r1 = %d, %s\n", alg, r1, res.Stats.String())
	}
	fmt.Println("\ngate-level pipeline and ISS agree across all algorithms")
}

// offsetJumps shifts the absolute control-flow targets of a program that is
// moved by `base` instructions (JMP targets and nothing else — BNEZ is
// relative).
func offsetJumps(prog []uint16, base uint8) []uint16 {
	out := make([]uint16, len(prog))
	for i, ins := range prog {
		if ins>>12 == 9 { // JMP
			out[i] = parsim.AsmJMP(uint8(ins&0xff) + base)
		} else {
			out[i] = ins
		}
	}
	return out
}
