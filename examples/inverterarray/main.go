// Inverter array: the paper's control experiment, at real-thread scale.
//
// Sweeps worker counts over the 32x16 inverter array for the event-driven
// and asynchronous algorithms and prints measured wall-clock speed-ups and
// utilisations — the live version of the paper's Figures 1, 2 and 5. Run
// `go run ./cmd/figures -mode model` for the full 1-16 processor curves on
// the virtual Multimax.
package main

import (
	"fmt"
	"log"
	"runtime"

	"parsim"
)

func main() {
	c := parsim.BenchInverterArray(parsim.DefaultInverterArray())
	fmt.Println(c)

	const horizon = 256
	const spin = 300 // synthetic per-evaluation work, like interpreted models
	maxP := runtime.NumCPU()

	run := func(alg parsim.Algorithm, p int) *parsim.Result {
		res, err := parsim.Simulate(c, parsim.Options{
			Algorithm: alg, Workers: p, Horizon: horizon, CostSpin: spin,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("\n%-6s %-28s %-28s\n", "P", "event-driven", "asynchronous")
	var edBase, asBase float64
	for p := 1; p <= maxP; p++ {
		// Best of three to tame scheduler noise.
		best := func(alg parsim.Algorithm) *parsim.Result {
			r := run(alg, p)
			for i := 0; i < 2; i++ {
				if r2 := run(alg, p); r2.Stats.Wall < r.Stats.Wall {
					r = r2
				}
			}
			return r
		}
		ed := best(parsim.EventDriven)
		as := best(parsim.Async)
		if p == 1 {
			edBase = float64(ed.Stats.Wall)
			asBase = float64(as.Stats.Wall)
		}
		fmt.Printf("%-6d %8v %5.2fx %4.0f%%util %8v %5.2fx %4.0f%%util\n",
			p,
			ed.Stats.Wall.Round(1e5), edBase/float64(ed.Stats.Wall), 100*ed.Stats.Utilization(),
			as.Stats.Wall.Round(1e5), asBase/float64(as.Stats.Wall), 100*as.Stats.Utilization())
	}

	// The events-per-tick knob from Figure 2: fewer active rows, fewer
	// events available, worse event-driven scaling.
	fmt.Println("\nevent availability (Fig. 2 knob):")
	for _, active := range []int{32, 16, 8, 4} {
		cfg := parsim.DefaultInverterArray()
		cfg.ActiveRows = active
		arr := parsim.BenchInverterArray(cfg)
		res, err := parsim.Simulate(arr, parsim.Options{
			Algorithm: parsim.Sequential, Horizon: horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d active rows: %6.0f events/tick\n",
			active, float64(res.Stats.NodeUpdates)/float64(horizon))
	}
	fmt.Println("\npaper: async reached 91% utilisation at 8 processors here,")
	fmt.Println("vs 68% at 16 for async and 10-20% less for event-driven")
}
