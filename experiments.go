package parsim

import "parsim/internal/harness"

// Experiment support: regenerate any figure or table from the paper's
// evaluation. See EXPERIMENTS.md for the full index.

// ExperimentMode selects how an experiment executes: on the deterministic
// virtual 16-processor machine model, or on real goroutines with wall-clock
// timing.
type ExperimentMode = harness.Mode

// Experiment execution modes.
const (
	// ModelMode replays algorithm schedules on a deterministic virtual
	// multiprocessor, reproducing the paper's full 1-16 processor curves on
	// any host.
	ModelMode = harness.Model
	// RealMode times the actual parallel simulators; curves are bounded by
	// the host's core count.
	RealMode = harness.Real
)

// ExperimentConfig parameterises experiment generation.
type ExperimentConfig = harness.Config

// Figure is one regenerated experiment: labelled series plus notes
// comparing against the paper's reported numbers.
type Figure = harness.Figure

// Series is one labelled curve of a Figure.
type Series = harness.Series

var (
	// ExperimentIDs lists every experiment: fig1..fig5 and t1..t4.
	ExperimentIDs = harness.IDs
	// DefaultExperimentConfig returns the standard configuration.
	DefaultExperimentConfig = harness.DefaultConfig
	// Experiment regenerates one figure or table by ID.
	Experiment = harness.Generate
)
